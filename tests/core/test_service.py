"""Campaign-service contract: remote leases heal, parity survives the wire.

The broker's promise is the supervisor's, extended across a socket: a
campaign whose workers are killed, partitioned, or duplicated must
still converge — with no manual intervention — to JSON byte-identical
to a clean serial run.  The pure lease state machine (`_LeaseBook`) is
driven here with a fake monotonic clock, the wire protocol with
socketpairs, and the whole service end-to-end with real broker-spawned
worker processes.
"""

import json
import multiprocessing as mp
import socket
import struct

import numpy as np
import pytest

from repro.chaos import CHAOS_PRESETS, ChaosInjector, ChaosSpec
from repro.config import ServiceConfig
from repro.core import CampaignSpec, DeepStrike, run_campaign
from repro.core.campaign import _to_json
from repro.core.cellcache import CellCache
from repro.core.executor import WorkerRecipe
from repro.core.service import ServiceStats, parse_address
from repro.core.service.broker import _LeaseBook
from repro.core.service.protocol import (
    MAX_FRAME_BYTES,
    decode_array,
    decode_recipe,
    encode_array,
    encode_recipe,
    recv_msg,
    send_msg,
)
from repro.errors import ProtocolError

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="service tests spawn local worker daemons via fork")


@pytest.fixture(scope="module")
def victim():
    from repro.zoo import get_pretrained

    return get_pretrained()


@pytest.fixture(scope="module")
def spec3():
    return CampaignSpec(sweeps=(("pool1", (40, 80, 120)),), eval_images=16,
                        seed=5)


def fresh_attack(victim):
    from repro.accel import AcceleratorEngine

    engine = AcceleratorEngine(victim.quantized,
                               rng=np.random.default_rng(66))
    return DeepStrike(engine, rng=np.random.default_rng(77))


def run(victim, spec, **kwargs):
    return run_campaign(fresh_attack(victim), victim.dataset.test_images,
                        victim.dataset.test_labels, spec, **kwargs)


@pytest.fixture(scope="module")
def serial_json(victim, spec3):
    """The clean serial artifact every distributed run must reproduce."""
    return _to_json(run(victim, spec3), complete=True)


def service_config(**overrides):
    """A ServiceConfig tuned for tests: fast heartbeats, short grace."""
    defaults = dict(local_workers=2, heartbeat_interval_s=0.1,
                    heartbeat_timeout_s=0.8, lease_timeout_s=60.0,
                    steal_after_s=30.0, no_worker_grace_s=20.0,
                    redispatch_jitter_s=0.05)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        with a, b:
            msgs = [{"type": "hello", "worker": "w1"},
                    {"type": "assign", "target": "pool1", "count": 40,
                     "attempt": 0, "fault": None,
                     "shard": {"duplicate": True}}]
            for msg in msgs:
                send_msg(a, msg)
            assert [recv_msg(b) for _ in msgs] == msgs

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        with b:
            a.close()
            assert recv_msg(b) is None

    def test_torn_frame_raises(self):
        a, b = socket.socketpair()
        with b:
            a.sendall(struct.pack(">I", 100) + b'{"type":')  # then dies
            a.close()
            with pytest.raises(ProtocolError):
                recv_msg(b)

    def test_oversized_frame_refused_without_reading_it(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError):
                recv_msg(b)

    def test_non_object_payload_refused(self):
        a, b = socket.socketpair()
        with a, b:
            payload = b'[1, 2]'
            a.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolError):
                recv_msg(b)

    def test_parse_address(self):
        assert parse_address("10.0.0.7:9000") == ("10.0.0.7", 9000)
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        assert parse_address("host:0", allow_zero=True) == ("host", 0)
        for bad in ("nocolon", "host:notaport", "host:0", "host:70000"):
            with pytest.raises(ProtocolError):
                parse_address(bad)

    def test_array_codec_is_bit_exact(self):
        rng = np.random.default_rng(3)
        for arr in (rng.normal(size=(4, 7, 3)),
                    rng.integers(0, 10, size=(5,), dtype=np.uint8),
                    np.array([], dtype=np.float32)):
            out = decode_array(json.loads(json.dumps(encode_array(arr))))
            assert out.dtype == arr.dtype and out.shape == arr.shape
            assert np.array_equal(out, arr)

    def test_bad_array_payload_raises(self):
        with pytest.raises(ProtocolError):
            decode_array({"dtype": "f8", "data": "xx"})

    def test_recipe_round_trips_through_json(self):
        recipe = WorkerRecipe(bank_cells=1234)
        wire = json.loads(json.dumps(encode_recipe(recipe)))
        assert decode_recipe(wire) == recipe

    def test_recipe_unknown_field_refused(self):
        wire = encode_recipe(WorkerRecipe())
        wire["surprise"] = 1
        with pytest.raises(ProtocolError):
            decode_recipe(wire)


# ---------------------------------------------------------------------------
# The lease state machine, on a fake clock
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.t = 100.0

    def __call__(self) -> float:
        return self.t


def book(cells=(("pool1", 40), ("pool1", 80)), **overrides):
    defaults = dict(heartbeat_timeout_s=2.0, lease_timeout_s=10.0,
                    steal_after_s=5.0, redispatch_jitter_s=0.0,
                    max_retries=3, quarantine_after=2)
    defaults.update(overrides)
    clock = FakeClock()
    return _LeaseBook(list(cells), ServiceConfig(**defaults), seed=5,
                      clock=clock), clock


class TestLeaseBook:
    def test_grants_in_canonical_order_then_waits(self):
        b, _ = book()
        b.register("w")
        assert b.grant("w") == (("pool1", 40), 0, False)
        assert b.grant("w") == (("pool1", 80), 0, False)
        assert b.grant("w") is None

    def test_delivery_dedup_is_exactly_once(self):
        b, _ = book()
        b.register("w")
        cell, _, _ = b.grant("w")
        assert b.deliver(cell) is True
        assert b.deliver(cell) is False  # duplicate dropped
        assert not b.done()

    def test_missed_heartbeats_evict_and_requeue_with_blame(self):
        b, clock = book()
        b.register("w")
        cell, _, _ = b.grant("w")
        clock.t += 2.5  # past heartbeat_timeout_s
        evicted, expiries, verdicts = b.sweep()
        assert evicted == ["w"] and expiries == 0 and verdicts == []
        assert b.blames[cell] == 1
        assert cell in b.queue  # reclaimed for re-dispatch

    def test_frozen_clock_never_expires_a_lease(self):
        b, clock = book(lease_timeout_s=0.001)
        b.register("w")
        b.grant("w")
        for _ in range(50):  # clock frozen: sweep forever, nothing expires
            b.beat("w")
            assert b.sweep() == ([], 0, [])

    def test_jumped_clock_expires_the_lease(self):
        b, clock = book()
        b.register("w")
        cell, _, _ = b.grant("w")
        clock.t += 11.0
        b.beat("w")  # still alive, just slow
        evicted, expiries, verdicts = b.sweep()
        assert evicted == [] and expiries == 1 and verdicts == []
        assert b.expiries[cell] == 1 and cell in b.queue

    def test_redispatch_jitter_holds_the_cell_briefly(self):
        b, clock = book(cells=[("pool1", 40)], redispatch_jitter_s=5.0)
        b.register("w")
        cell, _, _ = b.grant("w")
        clock.t += 11.0
        b.beat("w")
        b.sweep()
        held = b.ready_at[cell]
        assert clock.t < held <= clock.t + 5.0
        assert b.grant("w") is None        # not ready yet
        clock.t = held
        assert b.grant("w") == (cell, 1, False)

    def test_idle_worker_steals_only_stale_leases_of_others(self):
        b, clock = book(cells=[("pool1", 40)])
        b.register("a")
        b.register("b")
        cell, _, _ = b.grant("a")
        assert b.grant("b") is None       # lease too young to steal
        clock.t += 6.0                    # past steal_after_s
        b.beat("a")
        assert b.grant("b") == (cell, 1, True)
        assert b.grant("a") is None       # a already holds it: no re-steal
        assert b.grant("b") is None       # so does b now
        assert b.deliver(cell) is True    # first result wins
        assert b.deliver(cell) is False   # the loser is deduplicated

    def test_repeated_eviction_quarantines_the_cell(self):
        b, clock = book(cells=[("pool1", 40)], quarantine_after=2)
        for round_no in range(2):
            b.register("w")
            b.grant("w")
            clock.t += 3.0
            _, _, verdicts = b.sweep()
        assert len(verdicts) == 1
        (cell, failure), = verdicts
        assert failure.kind == "quarantined"
        assert b.done()

    def test_chronic_expiry_exhausts_into_timeout(self):
        b, clock = book(cells=[("pool1", 40)], max_retries=1,
                        quarantine_after=99)
        verdicts = []
        for _ in range(3):
            b.register("w")
            b.grant("w")
            clock.t += 11.0
            b.beat("w")
            _, _, verdicts = b.sweep()
            if verdicts:
                break
        (cell, failure), = verdicts
        assert failure.kind == "timeout"
        assert failure.error_type == "CellLeaseExpiredError"

    def test_late_result_for_requeued_cell_still_counts_once(self):
        b, clock = book(cells=[("pool1", 40)])
        b.register("w")
        cell, _, _ = b.grant("w")
        clock.t += 3.0
        b.sweep()                       # w evicted, cell requeued
        assert cell in b.queue
        assert b.deliver(cell) is True  # the "dead" worker's result lands
        assert cell not in b.queue      # and the requeue is cancelled
        assert b.done()


# ---------------------------------------------------------------------------
# Shard-level chaos directives
# ---------------------------------------------------------------------------


class TestShardChaos:
    def test_hostile_preset_arms_delivery_faults(self):
        spec = CHAOS_PRESETS["hostile"]
        assert spec.worker_disconnect_prob > 0
        assert spec.result_duplicate_prob > 0
        assert spec.result_delay_prob > 0

    def test_directives_drawn_at_dispatch_first_attempt_only(self):
        injector = ChaosInjector(ChaosSpec(
            worker_disconnect_prob=1.0, result_duplicate_prob=1.0,
            result_delay_prob=1.0, result_delay_s=0.5, seed=1))
        injector.campaign_cell_hook("pool1", 40)
        shard = injector.shard_fault("pool1", 40, attempt=0)
        assert shard == {"disconnect": True, "duplicate": True,
                         "delay": 0.5}
        assert injector.shard_fault("pool1", 40, attempt=1) is None
        assert injector.shard_fault("pool1", 80, attempt=0) is None

    def test_accessor_draws_nothing(self):
        injector = ChaosInjector(ChaosSpec(worker_disconnect_prob=0.5,
                                           result_duplicate_prob=0.5,
                                           seed=2))
        injector.campaign_cell_hook("pool1", 40)
        state = json.dumps(injector.rng.bit_generator.state)
        for _ in range(5):
            injector.shard_fault("pool1", 40)
            injector.cell_fault("pool1", 40)
        assert json.dumps(injector.rng.bit_generator.state) == state

    def test_draw_sequence_is_canonical_across_injectors(self):
        spec = ChaosSpec(worker_kill_prob=0.3, worker_disconnect_prob=0.3,
                         result_duplicate_prob=0.3, result_delay_prob=0.3,
                         seed=7)
        a, b = ChaosInjector(spec), ChaosInjector(spec)
        cells = [("pool1", c) for c in (40, 80, 120)]
        for target, count in cells:
            a.campaign_cell_hook(target, count)
            b.campaign_cell_hook(target, count)
        assert a._shard_faults == b._shard_faults
        assert a._cell_faults == b._cell_faults


# ---------------------------------------------------------------------------
# End-to-end acceptance
# ---------------------------------------------------------------------------


class TestDistributedParity:
    def test_kill_disconnect_duplicate_merges_serial_bytes(
            self, victim, spec3, serial_json, tmp_path):
        """The issue's acceptance scenario: a two-worker campaign where
        one worker is killed mid-cell, one result frame is dropped, and
        one result is delivered twice — and the merged checkpoint is
        byte-identical to the serial run."""
        def fault(target, count, attempt):
            if (target, count, attempt) == ("pool1", 40, 0):
                return ("kill", 0)
            return None

        def shard(target, count, attempt):
            if attempt:
                return None
            if (target, count) == ("pool1", 80):
                return {"disconnect": True}
            if (target, count) == ("pool1", 120):
                return {"duplicate": True}
            return None

        stats = ServiceStats()
        ckpt = tmp_path / "ckpt.json"
        result = run(victim, spec3, checkpoint_path=ckpt,
                     service=service_config(lease_timeout_s=4.0),
                     fault_hook=fault, shard_hook=shard, stats=stats)
        assert _to_json(result, complete=True) == serial_json
        assert stats.workers_evicted >= 1      # the kill
        assert stats.lease_expiries >= 1       # the dropped result
        assert stats.duplicates_dropped >= 1   # the double delivery
        assert stats.retries >= 2
        assert stats.serial_fallback is False
        assert json.loads(ckpt.read_text())["format_version"] == 2

    def test_warm_shared_cache_dispatches_zero_cells(
            self, victim, spec3, serial_json, tmp_path):
        """Acceptance: a rerun against the shared cache re-executes
        nothing — every cell is served from disk, byte parity holds."""
        cache_dir = tmp_path / "cells"
        first = ServiceStats()
        result = run(victim, spec3, service=service_config(),
                     cache=cache_dir, stats=first)
        assert _to_json(result, complete=True) == serial_json
        assert first.dispatched == len(spec3.cells())

        warm = ServiceStats()
        result = run(victim, spec3, service=service_config(),
                     cache=cache_dir, stats=warm)
        assert _to_json(result, complete=True) == serial_json
        assert warm.dispatched == 0
        assert warm.cache_hits == len(spec3.cells())

    def test_workers_consult_the_shared_cache(self, victim, spec3,
                                              serial_json, tmp_path):
        """Pre-warm the cache with a *serial* run, then serve through
        run_service directly — bypassing run_campaign's own pre-merge —
        so every hit must come from a *worker* resolving the cell by
        content address (the broker counts their cached deliveries)."""
        from repro.core.cellcache import campaign_digest
        from repro.core.service import run_service

        cache_dir = tmp_path / "cells"
        run(victim, spec3, cache=cache_dir)  # serial warm-up
        attack = fresh_attack(victim)
        images = victim.dataset.test_images[:spec3.eval_images]
        labels = victim.dataset.test_labels[:spec3.eval_images]
        clean = float((attack.clean_predictions(images) == labels).mean())
        digest = campaign_digest(attack.config, attack.bank_cells,
                                 attack.engine.model, images, labels)
        stats = ServiceStats()
        result = run_service(WorkerRecipe.from_attack(attack), images,
                             labels, spec3, clean, {}, {},
                             config=service_config(), stats=stats,
                             cache=CellCache(cache_dir), digest=digest)
        assert _to_json(result, complete=True) == serial_json
        assert stats.cache_hits == len(spec3.cells())  # all worker-side
        assert stats.dispatched == len(spec3.cells())

    def test_no_worker_degrades_to_in_process_serial(
            self, victim, spec3, serial_json):
        """A broker nobody ever joins must not hang: past the grace
        period it finishes the campaign itself, serially, with parity."""
        stats = ServiceStats()
        result = run(victim, spec3,
                     service=service_config(local_workers=0,
                                            no_worker_grace_s=0.5),
                     stats=stats)
        assert _to_json(result, complete=True) == serial_json
        assert stats.serial_fallback is True
        assert stats.dispatched == len(spec3.cells())

    def test_idle_worker_steals_a_wedged_lease(self, victim, spec3,
                                               serial_json):
        """One cell hangs for a while on worker A; with the queue
        drained, worker B steals it past steal_after_s and finishes
        first.  A's eventual duplicate is dropped; parity holds."""
        def fault(target, count, attempt):
            if (target, count, attempt) == ("pool1", 40, 0):
                return ("hang", 8.0)
            return None

        stats = ServiceStats()
        result = run(victim, spec3,
                     service=service_config(steal_after_s=1.0,
                                            lease_timeout_s=120.0),
                     fault_hook=fault, stats=stats)
        assert _to_json(result, complete=True) == serial_json
        assert stats.steals >= 1
        assert stats.lease_expiries == 0  # healed by stealing, not expiry

    def test_chaos_storm_converges_with_parity(self, victim, spec3,
                                               serial_json):
        """Seeded kill/disconnect/duplicate/delay chaos all at once;
        the service still converges to the serial bytes."""
        injector = ChaosInjector(ChaosSpec(
            worker_kill_prob=0.3, worker_disconnect_prob=0.3,
            result_duplicate_prob=0.5, result_delay_prob=0.3,
            result_delay_s=0.05, seed=11))
        stats = ServiceStats()
        result = run(victim, spec3,
                     service=service_config(lease_timeout_s=4.0),
                     before_cell=injector.campaign_cell_hook,
                     fault_hook=injector.cell_fault,
                     shard_hook=injector.shard_fault, stats=stats)
        assert _to_json(result, complete=True) == serial_json
