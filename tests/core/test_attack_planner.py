"""DeepStrike planner and blind-baseline tests."""

import numpy as np
import pytest

from repro.core import BlindAttack, DeepStrike
from repro.errors import SchedulerError


@pytest.fixture(scope="module")
def attack(lenet_engine_module):
    return DeepStrike(lenet_engine_module, bank_cells=5000,
                      rng=np.random.default_rng(17))


@pytest.fixture(scope="module")
def lenet_engine_module():
    import numpy as np

    from repro.accel import AcceleratorEngine
    from repro.zoo import get_pretrained

    return AcceleratorEngine(get_pretrained().quantized,
                             rng=np.random.default_rng(55))


class TestPlanning:
    def test_plan_targets_requested_layer(self, attack):
        plan = attack.plan_for_layer("conv2", 500)
        assert plan.strikes_landed == 500
        assert plan.wasted_strikes == 0
        assert [s.layer_name for s in plan.struck] == ["conv2"]

    def test_strikes_within_layer_window(self, attack, lenet_engine_module):
        plan = attack.plan_for_layer("conv2", 300)
        window = lenet_engine_module.schedule.window("conv2")
        cycles = plan.struck[0].cycles
        assert cycles.min() >= 0
        assert cycles.max() < window.cycles

    def test_scheme_delay_reaches_layer(self, attack, lenet_engine_module):
        plan = attack.plan_for_layer("fc1", 100)
        window = lenet_engine_module.schedule.window("fc1")
        assert plan.trigger_cycle + plan.scheme.attack_delay \
            == window.start_cycle

    def test_first_layer_plan_trims_to_trigger(self, attack):
        plan = attack.plan_for_layer("conv1", 100)
        assert plan.scheme.attack_delay == 0
        assert plan.strikes_landed == 100

    def test_too_many_strikes_rejected(self, attack):
        with pytest.raises(Exception):
            attack.plan_for_layer("pool1", 100_000)

    def test_strike_voltages_in_fault_regime(self, attack):
        plan = attack.plan_for_layer("conv2", 1000)
        v = plan.mean_strike_voltage()
        assert 0.93 < v < 0.96  # the shallow-violation attack regime

    def test_denser_strikes_not_shallower(self, attack):
        sparse = attack.plan_for_layer("conv2", 200).mean_strike_voltage()
        dense = attack.plan_for_layer("conv2", 4500).mean_strike_voltage()
        assert dense <= sparse + 1e-6

    def test_victim_activity_deepens_strikes(self, attack):
        """Strikes during the busy conv layer land deeper than strikes in
        the quiet FC layer (the paper's footnote: victim components
        consume power and strengthen the injection)."""
        conv = attack.plan_for_layer("conv2", 200).mean_strike_voltage()
        fc = attack.plan_for_layer("fc1", 200).mean_strike_voltage()
        assert conv < fc


class TestExecution:
    def test_outcome_fields(self, attack, lenet_engine_module):
        from repro.zoo import get_pretrained

        victim = get_pretrained()
        images = victim.dataset.test_images[:64]
        labels = victim.dataset.test_labels[:64]
        plan = attack.plan_for_layer("conv2", 4000)
        outcome = attack.execute(images, labels, plan)
        assert outcome.target_layer == "conv2"
        assert 0 <= outcome.attacked_accuracy <= outcome.clean_accuracy
        assert outcome.accuracy_drop >= 0

    def test_more_strikes_more_damage(self, attack):
        from repro.zoo import get_pretrained

        victim = get_pretrained()
        images = victim.dataset.test_images[:96]
        labels = victim.dataset.test_labels[:96]
        few = attack.execute(images, labels,
                             attack.plan_for_layer("conv2", 200))
        many = attack.execute(images, labels,
                              attack.plan_for_layer("conv2", 4500))
        assert many.attacked_accuracy <= few.attacked_accuracy


class TestBlindBaseline:
    def test_random_strikes_scatter_across_layers(self, lenet_engine_module):
        blind = BlindAttack(lenet_engine_module, bank_cells=5000,
                            rng=np.random.default_rng(3))
        plan = blind.plan_random(3000)
        assert plan.strikes_landed + plan.wasted_strikes == 3000
        assert plan.wasted_strikes > 0  # some always hit stalls
        layers = {s.layer_name for s in plan.struck}
        assert "fc1" in layers  # fc1 dominates the timeline

    def test_blind_far_weaker_than_guided(self, lenet_engine_module):
        from repro.zoo import get_pretrained

        victim = get_pretrained()
        images = victim.dataset.test_images[:96]
        labels = victim.dataset.test_labels[:96]
        guided = DeepStrike(lenet_engine_module, bank_cells=5000,
                            rng=np.random.default_rng(5))
        blind = BlindAttack(lenet_engine_module, bank_cells=5000,
                            rng=np.random.default_rng(5))
        g = guided.execute(images, labels, guided.plan_for_layer("conv2", 4500))
        b = blind.execute(images, labels, blind.plan_random(4500))
        assert b.attacked_accuracy >= g.attacked_accuracy
        assert g.accuracy_drop >= 2 * b.accuracy_drop or b.accuracy_drop < 0.02

    def test_too_many_random_strikes_rejected(self, lenet_engine_module):
        blind = BlindAttack(lenet_engine_module)
        with pytest.raises(SchedulerError):
            blind.plan_random(10 ** 7)

    def test_zero_strikes_rejected(self, lenet_engine_module):
        blind = BlindAttack(lenet_engine_module)
        with pytest.raises(SchedulerError):
            blind.plan_random(0)
