"""Differential serial-vs-parallel parity suite (the executor's contract).

The process-parallel campaign executor's headline guarantee is not
"roughly the same numbers" but *byte-identical final campaign JSON* at
any worker count — including interrupted-and-resumed runs and runs under
a chaos preset.  These tests enforce it by diffing the serialized output
of ``workers=1`` against ``workers ∈ {2, 4}`` runs, plus the fault
isolation and hook-ordering contracts the parallel path must preserve.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.chaos import ChaosInjector, chaos_preset
from repro.core import CampaignSpec, DeepStrike, run_campaign
from repro.core import executor as executor_mod
from repro.core.campaign import _to_json
from repro.core.executor import WorkerRecipe
from repro.errors import ConfigError, ProfilingError, WorkerCrashError

WORKER_COUNTS = [2, 4]


@pytest.fixture(scope="module")
def victim():
    from repro.zoo import get_pretrained

    return get_pretrained()


@pytest.fixture(scope="module")
def small_spec():
    return CampaignSpec(sweeps=(("pool1", (40, 80)),), blind_counts=(40,),
                        eval_images=16, seed=5)


def fresh_attack(victim):
    from repro.accel import AcceleratorEngine

    engine = AcceleratorEngine(victim.quantized,
                               rng=np.random.default_rng(66))
    return DeepStrike(engine, rng=np.random.default_rng(77))


def run(victim, spec, **kwargs):
    return run_campaign(fresh_attack(victim), victim.dataset.test_images,
                        victim.dataset.test_labels, spec, **kwargs)


@pytest.fixture(scope="module")
def serial_json(victim, small_spec):
    """The golden artifact every parallel run must reproduce exactly."""
    return _to_json(run(victim, small_spec), complete=True)


class TestByteParity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_workers_match_serial_bytes(self, victim, small_spec,
                                        serial_json, workers):
        parallel = run(victim, small_spec, workers=workers)
        assert _to_json(parallel, complete=True) == serial_json

    def test_checkpointed_parallel_matches_serial(self, victim, small_spec,
                                                  serial_json, tmp_path):
        """Checkpoints land in completion order, but the final assembly
        is canonical — the bytes still match."""
        ckpt = tmp_path / "ckpt.json"
        parallel = run(victim, small_spec, workers=2, checkpoint_path=ckpt)
        assert _to_json(parallel, complete=True) == serial_json
        assert ckpt.exists()

    def test_explicit_recipe_matches_default(self, victim, small_spec,
                                             serial_json):
        recipe = WorkerRecipe.from_attack(fresh_attack(victim),
                                          victim_name="lenet5")
        parallel = run(victim, small_spec, workers=2, recipe=recipe)
        assert _to_json(parallel, complete=True) == serial_json

    def test_workers_below_one_rejected(self, victim, small_spec):
        with pytest.raises(ConfigError, match="workers"):
            run(victim, small_spec, workers=0)


class TestResumeParity:
    def test_kill_and_resume_mid_campaign(self, victim, small_spec,
                                          serial_json, tmp_path,
                                          monkeypatch):
        """Acceptance: SIGINT mid-parallel-campaign, resume at workers=2,
        final bytes equal the uninterrupted serial run."""
        ckpt = tmp_path / "ckpt.json"
        writes = []
        orig = executor_mod._atomic_write_text

        def interrupting_write(path, text):
            orig(path, text)
            writes.append(text)
            if len(writes) == 2:
                raise KeyboardInterrupt  # what SIGINT raises

        monkeypatch.setattr(executor_mod, "_atomic_write_text",
                            interrupting_write)
        with pytest.raises(KeyboardInterrupt):
            run(victim, small_spec, workers=2, checkpoint_path=ckpt)
        monkeypatch.setattr(executor_mod, "_atomic_write_text", orig)
        assert ckpt.exists()  # the checkpoint survived the interrupt

        resumed = run(victim, small_spec, workers=2, checkpoint_path=ckpt,
                      resume_from=ckpt)
        assert _to_json(resumed, complete=True) == serial_json

    def test_serial_checkpoint_resumes_in_parallel(self, victim, small_spec,
                                                   serial_json, tmp_path):
        """Cross-mode resume: a checkpoint a serial run left behind feeds
        a parallel run (and vice-versa formats are the same v2 files)."""
        ckpt = tmp_path / "ckpt.json"

        def interrupt(target, count):
            if (target, count) == ("pool1", 80):
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run(victim, small_spec, checkpoint_path=ckpt,
                before_cell=interrupt)
        resumed = run(victim, small_spec, workers=4, resume_from=ckpt)
        assert _to_json(resumed, complete=True) == serial_json

    def test_fully_complete_resume_skips_pool(self, victim, small_spec,
                                              serial_json, tmp_path,
                                              monkeypatch):
        """Nothing pending: the parallel path must not even build a pool."""
        ckpt = tmp_path / "ckpt.json"
        run(victim, small_spec, checkpoint_path=ckpt)

        def explode(*args, **kwargs):
            raise AssertionError("pool built with no pending cells")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", explode)
        resumed = run(victim, small_spec, workers=4, resume_from=ckpt)
        assert _to_json(resumed, complete=True) == serial_json


class TestChaosParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_chaos_preset_is_worker_count_independent(self, victim,
                                                      small_spec, workers,
                                                      tmp_path):
        """The hostile preset kills the same cells at every worker count:
        the final JSON (outcomes *and* failures) is byte-identical."""
        def result_for(n):
            injector = ChaosInjector(chaos_preset("hostile", seed=3))
            return _to_json(
                run(victim, small_spec, workers=n,
                    before_cell=injector.campaign_cell_hook),
                complete=True,
            )

        assert result_for(workers) == result_for(1)


class TestWorkerFaultIsolation:
    @pytest.fixture(scope="class")
    def bad_spec(self):
        # "nowhere" is not a layer of the victim schedule: the cell fails
        # *inside* the worker (plan_for_layer raises ConfigError).
        return CampaignSpec(sweeps=(("pool1", (40,)), ("nowhere", (10,))),
                            eval_images=16, seed=5)

    def test_worker_cell_death_recorded_not_raised(self, victim, bad_spec):
        result = run(victim, bad_spec, workers=2)
        assert [f.target_layer for f in result.failures] == ["nowhere"]
        assert result.failures[0].error_type == "ConfigError"
        done = {(s.target_layer, o.n_strikes)
                for s in result.sweeps for o in s.outcomes}
        assert done == {("pool1", 40)}

    def test_failures_match_serial_bytes(self, victim, bad_spec):
        serial = _to_json(run(victim, bad_spec), complete=True)
        parallel = _to_json(run(victim, bad_spec, workers=2), complete=True)
        assert parallel == serial

    def test_dispatch_time_failure_skips_the_cell(self, victim, small_spec):
        executed = []

        def hook(target, count):
            executed.append((target, count))
            if target == "blind":
                raise ProfilingError("injected at dispatch")

        result = run(victim, small_spec, workers=2, before_cell=hook)
        assert [f.target_layer for f in result.failures] == ["blind"]
        done = {(s.target_layer, o.n_strikes)
                for s in result.sweeps for o in s.outcomes}
        assert ("blind", 40) not in done


class TestDispatchSemantics:
    def test_before_cell_fires_in_submitting_process_in_order(
            self, victim, small_spec):
        """The pinned contract: the hook runs in the parent, at dispatch
        time, in canonical CampaignSpec.cells() order."""
        seen = []

        def hook(target, count):
            seen.append((os.getpid(), target, count))

        run(victim, small_spec, workers=2, before_cell=hook)
        assert [(t, c) for _, t, c in seen] == small_spec.cells()
        assert {pid for pid, _, _ in seen} == {os.getpid()}


@pytest.mark.skipif("fork" not in mp.get_all_start_methods(),
                    reason="needs fork to propagate the crash stub")
class TestWorkerCrash:
    def test_dead_worker_raises_typed_error_and_keeps_checkpoint(
            self, victim, small_spec, tmp_path, monkeypatch):
        """With supervision off, a worker *process* dying is not a cell
        failure: the campaign stops with WorkerCrashError, the
        checkpoint stays valid.  (Supervised crash recovery is covered
        by tests/core/test_supervisor.py.)"""
        from repro.config import SupervisorConfig

        monkeypatch.setattr(executor_mod, "_worker_cell", _crash_cell)
        ckpt = tmp_path / "ckpt.json"
        with pytest.raises(WorkerCrashError) as excinfo:
            run(victim, small_spec, workers=2, checkpoint_path=ckpt,
                supervisor=SupervisorConfig(enabled=False))
        assert excinfo.value.target_layer in {"pool1", "blind"}


def _crash_cell(target, count, base_seed, fault=None):
    # pragma: no cover - dies
    os._exit(13)
