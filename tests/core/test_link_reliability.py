"""Lossy-link ARQ tests: fault model, NAK paths, retransmission, dedup."""

import numpy as np
import pytest

from repro.config import ReliabilityConfig, default_config
from repro.core import AttackScheme, RemoteAttacker, UARTLink
from repro.core.link_faults import LinkFaultConfig, LinkFaultModel
from repro.core.remote import (
    NAK_BAD_FRAME,
    NAK_MALFORMED,
    NAK_REJECTED,
    OP_ACK,
    OP_LOAD_SCHEME,
    OP_NAK,
    decode_frame,
    encode_frame,
)
from repro.core.scheduler import AttackScheduler
from repro.errors import ConfigError, LinkDeadError
from repro.sensors.calibration import theta_for_target
from repro.sensors.delay import GateDelayModel
from repro.striker import StrikerBank


def make_remote(fault_model=None, reliability=None):
    cfg = default_config()
    bank = StrikerBank(100, cfg, structural_cells=4)
    theta = theta_for_target(cfg.tdc, GateDelayModel(cfg.delay))
    scheduler = AttackScheduler(cfg, bank, theta,
                                rng=np.random.default_rng(0))
    return RemoteAttacker(UARTLink(fault_model=fault_model), scheduler,
                          reliability=reliability)


def valid_scheme():
    return AttackScheme(attack_delay=10, attack_period=5,
                        number_of_attacks=3, strike_cycles=2)


class TestLinkFaultConfig:
    def test_probabilities_validated(self):
        with pytest.raises(ConfigError):
            LinkFaultConfig(drop=-0.1)
        with pytest.raises(ConfigError):
            LinkFaultConfig(drop=1.2)
        with pytest.raises(ConfigError):
            LinkFaultConfig(drop=0.6, corrupt=0.6)

    def test_lossy_helper(self):
        cfg = LinkFaultConfig.lossy(0.2)
        assert cfg.drop == pytest.approx(0.1)
        assert cfg.corrupt == pytest.approx(0.1)
        assert cfg.total_probability == pytest.approx(0.2)

    def test_fates_are_seeded(self):
        cfg = LinkFaultConfig(drop=0.3, corrupt=0.3, truncate=0.2)
        a = LinkFaultModel(cfg, seed=9)
        b = LinkFaultModel(cfg, seed=9)
        assert [a.fate() for _ in range(50)] == [b.fate() for _ in range(50)]

    def test_corrupt_flips_exactly_one_bit(self):
        model = LinkFaultModel(LinkFaultConfig(corrupt=1.0), seed=1)
        frame = encode_frame(0x01, b"payload")
        mangled = model.corrupt_frame(frame)
        diff = [a ^ b for a, b in zip(frame, mangled)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_truncate_is_proper_prefix(self):
        model = LinkFaultModel(LinkFaultConfig(truncate=1.0), seed=2)
        frame = encode_frame(0x01, b"payload")
        for _ in range(20):
            cut = model.truncate_frame(frame)
            assert len(cut) < len(frame) and frame.startswith(cut)

    def test_single_bit_flip_always_detected(self):
        # An additive mod-256 checksum cannot be cancelled by one flip.
        frame = encode_frame(0x01, bytes(range(16)))
        for bit in range(8 * len(frame)):
            mangled = bytearray(frame)
            mangled[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(Exception):
                decode_frame(bytes(mangled))


class TestDeviceNakPaths:
    """Every FrameError / NAK branch in service_device."""

    def _device_reply(self, remote, raw):
        remote.link.host_send(raw)
        remote.service_device()
        return decode_frame(remote.link.host_recv())

    def test_bad_sof_nakked(self):
        remote = make_remote()
        frame = bytearray(encode_frame(OP_LOAD_SCHEME, bytes(17)))
        frame[0] = 0x00
        opcode, payload = self._device_reply(remote, bytes(frame))
        assert opcode == OP_NAK and payload == bytes([NAK_BAD_FRAME])

    def test_short_frame_nakked(self):
        remote = make_remote()
        opcode, payload = self._device_reply(remote, b"\xa5\x01")
        assert opcode == OP_NAK and payload == bytes([NAK_BAD_FRAME])

    def test_empty_frame_nakked(self):
        remote = make_remote()
        opcode, payload = self._device_reply(remote, b"")
        assert opcode == OP_NAK and payload == bytes([NAK_BAD_FRAME])

    def test_length_mismatch_nakked(self):
        remote = make_remote()
        raw = encode_frame(OP_LOAD_SCHEME, bytes(17)) + b"\x00"
        opcode, payload = self._device_reply(remote, raw)
        assert opcode == OP_NAK and payload == bytes([NAK_BAD_FRAME])

    def test_checksum_mismatch_nakked(self):
        remote = make_remote()
        frame = bytearray(encode_frame(OP_LOAD_SCHEME, bytes(17)))
        frame[-1] ^= 0xFF
        opcode, payload = self._device_reply(remote, bytes(frame))
        assert opcode == OP_NAK and payload == bytes([NAK_BAD_FRAME])

    def test_unknown_opcode_nakked(self):
        remote = make_remote()
        opcode, payload = self._device_reply(
            remote, encode_frame(0x7F, bytes([9]) + b"body"))
        assert opcode == OP_NAK
        assert payload == bytes([9, NAK_MALFORMED])

    def test_empty_payload_nakked(self):
        remote = make_remote()
        opcode, payload = self._device_reply(
            remote, encode_frame(OP_LOAD_SCHEME, b""))
        assert opcode == OP_NAK and payload == bytes([NAK_MALFORMED])

    def test_load_scheme_wrong_length_nakked(self):
        remote = make_remote()
        opcode, payload = self._device_reply(
            remote, encode_frame(OP_LOAD_SCHEME, bytes([5]) + bytes(7)))
        assert opcode == OP_NAK
        assert payload == bytes([5, NAK_MALFORMED])

    def test_invalid_scheme_rejected_permanently(self):
        remote = make_remote()
        bad = bytes([3]) + b"\x00" * 16  # attack_delay=0 etc: invalid
        opcode, payload = self._device_reply(
            remote, encode_frame(OP_LOAD_SCHEME, bad))
        assert opcode == OP_NAK
        assert payload == bytes([3, NAK_REJECTED])


class TestARQ:
    def test_clean_link_single_attempt(self):
        remote = make_remote()
        assert remote.upload_scheme(valid_scheme())
        assert remote.stats.retransmissions == 0
        assert remote.stats.acks == 1

    def test_lossy_link_100_of_100(self):
        """Acceptance: p=0.2 drop+corrupt, 100/100 uploads succeed."""
        model = LinkFaultModel(LinkFaultConfig.lossy(0.2), seed=42)
        remote = make_remote(fault_model=model)
        results = [remote.upload_scheme(valid_scheme()) for _ in range(100)]
        assert sum(results) == 100
        assert remote.link.stats.faulted > 0  # the link really was hostile
        assert remote.stats.retransmissions > 0

    def test_hostile_mix_still_converges(self):
        model = LinkFaultModel(
            LinkFaultConfig(drop=0.12, corrupt=0.1, truncate=0.05,
                            duplicate=0.05, reorder=0.05), seed=7)
        remote = make_remote(fault_model=model)
        assert all(remote.upload_scheme(valid_scheme()) for _ in range(100))

    def test_dead_link_raises_typed_error(self):
        model = LinkFaultModel(LinkFaultConfig(drop=1.0), seed=0)
        rel = ReliabilityConfig(max_retries=4)
        remote = make_remote(fault_model=model, reliability=rel)
        with pytest.raises(LinkDeadError) as excinfo:
            remote.upload_scheme(valid_scheme())
        assert excinfo.value.attempts == 5
        assert excinfo.value.waited_s > 0

    def test_op_timeout_raises(self):
        model = LinkFaultModel(LinkFaultConfig(drop=1.0), seed=0)
        rel = ReliabilityConfig(max_retries=1000, backoff_base_s=0.01,
                                backoff_max_s=0.01, op_timeout_s=0.05)
        remote = make_remote(fault_model=model, reliability=rel)
        with pytest.raises(LinkDeadError) as excinfo:
            remote.upload_scheme(valid_scheme())
        assert excinfo.value.attempts < 100  # timeout, not retry budget
        assert remote.stats.timeouts == 1

    def test_backoff_grows_and_caps(self):
        model = LinkFaultModel(LinkFaultConfig(drop=1.0), seed=0)
        rel = ReliabilityConfig(max_retries=6, backoff_base_s=1e-3,
                                backoff_factor=2.0, backoff_max_s=4e-3,
                                backoff_jitter=0.0)
        remote = make_remote(fault_model=model, reliability=rel)
        with pytest.raises(LinkDeadError):
            remote.upload_scheme(valid_scheme())
        # 1+2+4+4+4+4+4 ms: doubling then clamped at backoff_max_s.
        assert remote.stats.backoff_s == pytest.approx(23e-3)

    def test_backoff_jitter_bounded_and_seeded(self):
        """Jittered waits stay within ±jitter of the nominal ladder, and
        the same RNG seed reproduces the same total wait exactly."""
        import numpy as np

        rel = ReliabilityConfig(max_retries=6, backoff_base_s=1e-3,
                                backoff_factor=2.0, backoff_max_s=4e-3,
                                backoff_jitter=0.5)

        def total_backoff(seed):
            model = LinkFaultModel(LinkFaultConfig(drop=1.0), seed=0)
            remote = make_remote(fault_model=model, reliability=rel)
            remote.rng = np.random.default_rng(seed)
            with pytest.raises(LinkDeadError):
                remote.upload_scheme(valid_scheme())
            return remote.stats.backoff_s

        waited = total_backoff(seed=9)
        assert 23e-3 * 0.5 <= waited <= 23e-3 * 1.5
        assert waited != pytest.approx(23e-3)  # jitter actually applied
        assert total_backoff(seed=9) == waited  # seeded: reproducible

    def test_rejection_not_retried(self):
        remote = make_remote()
        bad = AttackScheme.__new__(AttackScheme)
        object.__setattr__(bad, "attack_delay", 0)
        object.__setattr__(bad, "attack_period", 0)
        object.__setattr__(bad, "number_of_attacks", 0)
        object.__setattr__(bad, "strike_cycles", 0)
        assert remote.upload_scheme(bad) is False
        assert remote.stats.retransmissions == 0
        assert remote.stats.naks == 1

    def test_device_dedup_replays_cached_reply(self):
        """A retransmitted request must not re-execute on the device."""
        remote = make_remote()
        calls = []
        orig = remote.scheduler.load_scheme
        remote.scheduler.load_scheme = lambda s: (calls.append(s),
                                                  orig(s))[1]
        frame = encode_frame(
            OP_LOAD_SCHEME,
            bytes([7]) + __import__("struct").pack("<IIII", 10, 5, 3, 2))
        for _ in range(3):  # original + two retransmissions
            remote.link.host_send(frame)
            remote.service_device()
        assert len(calls) == 1
        replies = []
        while (raw := remote.link.host_recv()) is not None:
            replies.append(decode_frame(raw))
        assert replies == [(OP_ACK, bytes([7]))] * 3

    def test_duplicate_replies_discarded(self):
        model = LinkFaultModel(LinkFaultConfig(duplicate=1.0), seed=0)
        remote = make_remote(fault_model=model)
        assert remote.upload_scheme(valid_scheme())
        assert remote.upload_scheme(valid_scheme())


class TestTraceSaturation:
    def test_round_trip_with_saturating_readouts(self):
        remote = make_remote()
        injected = [12, 250, 255, 256, 300, 1000, 7]
        remote.scheduler._readouts = list(injected)
        with pytest.warns(RuntimeWarning, match="clipped to uint8"):
            samples = remote.download_trace()
        assert samples.tolist() == [12, 250, 255, 255, 255, 255, 7]
        assert remote.last_trace.saturated == 3
        assert remote.last_trace.was_saturated

    def test_unsaturated_trace_has_no_flag(self):
        remote = make_remote()
        remote.scheduler._readouts = [1, 2, 3, 255]
        samples = remote.download_trace()
        assert samples.tolist() == [1, 2, 3, 255]
        assert remote.last_trace.saturated == 0
        assert not remote.last_trace.was_saturated

    def test_saturation_survives_lossy_link(self):
        model = LinkFaultModel(LinkFaultConfig.lossy(0.2), seed=3)
        remote = make_remote(fault_model=model)
        remote.scheduler._readouts = [100, 400, 90]
        with pytest.warns(RuntimeWarning):
            samples = remote.download_trace()
        assert samples.tolist() == [100, 255, 90]
        assert remote.last_trace.saturated == 1
