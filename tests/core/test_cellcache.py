"""Content-addressed cell-cache contract: paranoid reads, honest keys.

Two properties carry the feature:

* a cache can *lose* entries (corruption, truncation, tampering, schema
  drift — all are misses), but must never *serve a wrong one*;
* a warm-cache campaign recomputes nothing (``stats.dispatched == 0``)
  yet emits JSON byte-identical to the cold serial run.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.core import CampaignSpec, DeepStrike, run_campaign
from repro.core.campaign import _to_json
from repro.core.cellcache import CellCache, campaign_digest
from repro.core.evaluation import AttackOutcome
from repro.core.supervisor import SupervisorStats


@pytest.fixture(scope="module")
def victim():
    from repro.zoo import get_pretrained

    return get_pretrained()


@pytest.fixture(scope="module")
def small_spec():
    return CampaignSpec(sweeps=(("pool1", (40, 80)),), eval_images=16,
                        seed=5)


def fresh_attack(victim):
    from repro.accel import AcceleratorEngine

    engine = AcceleratorEngine(victim.quantized,
                               rng=np.random.default_rng(66))
    return DeepStrike(engine, rng=np.random.default_rng(77))


def outcome(**overrides) -> AttackOutcome:
    base = dict(target_layer="pool1", n_strikes=40, strikes_landed=38,
                clean_accuracy=0.9375, attacked_accuracy=0.8125,
                mean_strike_voltage=0.8342)
    base.update(overrides)
    return AttackOutcome(**base)


DIGEST = "d" * 64


class TestEntryIntegrity:
    def key(self, cache, count=40):
        return cache.cell_key(DIGEST, "pool1", count, base_seed=5)

    def test_put_get_round_trip(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        key = self.key(cache)
        cache.put(key, outcome())
        assert cache.get(key) == outcome()
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        assert cache.get(self.key(cache)) is None
        assert cache.stats.misses == 1 and cache.stats.corrupt == 0

    def test_truncated_entry_is_a_miss_and_removed(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        key = self.key(cache)
        cache.put(key, outcome())
        path = cache._entry_path(key)
        path.write_text(path.read_text()[:37])  # torn mid-JSON
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # unlinked so it never costs again

    def test_tampered_payload_is_a_miss(self, tmp_path):
        """A bit-flip in the payload breaks the integrity digest."""
        cache = CellCache(tmp_path / "cache")
        key = self.key(cache)
        cache.put(key, outcome())
        path = cache._entry_path(key)
        entry = json.loads(path.read_text())
        entry["payload"]["attacked_accuracy"] = 0.0
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_relocated_entry_is_a_miss(self, tmp_path):
        """An entry copied under another cell's address must not serve."""
        cache = CellCache(tmp_path / "cache")
        key = self.key(cache)
        other = self.key(cache, count=80)
        cache.put(key, outcome())
        target = cache._entry_path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(cache._entry_path(key).read_text())
        assert cache.get(other) is None
        assert cache.stats.corrupt == 1

    def test_future_format_version_is_a_miss(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        key = self.key(cache)
        cache.put(key, outcome())
        path = cache._entry_path(key)
        entry = json.loads(path.read_text())
        entry["format_version"] = 999
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_schema_drift_is_a_miss(self, tmp_path):
        """A payload that no longer matches AttackOutcome is refused."""
        cache = CellCache(tmp_path / "cache")
        key = self.key(cache)
        cache.put(key, outcome())
        path = cache._entry_path(key)
        entry = json.loads(path.read_text())
        entry["payload"]["from_the_future"] = 1
        # keep the integrity digest honest: drift, not corruption
        from repro.core.cellcache import _payload_digest

        entry["digest"] = _payload_digest(entry["payload"])
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None


class TestBoundedCache:
    """LRU size bounds: pruning drops whole stale entries, never bytes
    of a survivor — a bounded cache loses history, not integrity."""

    def fill(self, cache, counts):
        """Store one entry per count with strictly increasing mtimes."""
        import os

        keys = {}
        for i, count in enumerate(counts):
            key = cache.cell_key(DIGEST, "pool1", count, 5)
            cache.put(key, outcome(n_strikes=count))
            os.utime(cache._entry_path(key), (1000.0 + i, 1000.0 + i))
            keys[count] = key
        return keys

    def entry_bytes(self, cache, key):
        return cache._entry_path(key).stat().st_size

    def test_gc_prunes_oldest_first_to_the_bound(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        keys = self.fill(cache, [40, 80, 120])
        size = self.entry_bytes(cache, keys[40])
        report = cache.gc(max_bytes=2 * size + 64)
        assert report.entries_pruned == 1 and report.entries_kept == 2
        assert cache.stats.pruned == 1
        assert cache.get(keys[40]) is None          # oldest fell
        assert cache.get(keys[80]) == outcome(n_strikes=80)
        assert cache.get(keys[120]) == outcome(n_strikes=120)

    def test_pruning_never_corrupts_survivors(self, tmp_path):
        """Acceptance for the bound: after any gc, every surviving
        entry still round-trips bit-perfectly (corrupt == 0) and every
        pruned entry is a clean miss, not an error."""
        cache = CellCache(tmp_path / "cache")
        counts = [40, 80, 120, 160, 200]
        keys = self.fill(cache, counts)
        size = self.entry_bytes(cache, keys[40])
        cache.gc(max_bytes=2 * size + 64)
        survivors = [c for c in counts if cache._entry_path(keys[c]).exists()]
        assert len(survivors) == 2
        for count in counts:
            got = cache.get(keys[count])
            if count in survivors:
                assert got == outcome(n_strikes=count)
            else:
                assert got is None
        assert cache.stats.corrupt == 0

    def test_hits_refresh_recency_so_gc_spares_hot_entries(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        keys = self.fill(cache, [40, 80, 120])
        assert cache.get(keys[40]) is not None  # touch the oldest entry
        size = self.entry_bytes(cache, keys[40])
        cache.gc(max_bytes=2 * size + 64)
        assert cache.get(keys[40]) is not None  # hot: spared
        assert cache.get(keys[80]) is None      # now the coldest: pruned
        assert cache.get(keys[120]) is not None

    def test_put_enforces_the_bound_automatically(self, tmp_path):
        probe = CellCache(tmp_path / "probe")
        key = probe.cell_key(DIGEST, "pool1", 40, 5)
        probe.put(key, outcome())
        size = self.entry_bytes(probe, key)

        cache = CellCache(tmp_path / "cache", max_bytes=2 * size + 64)
        self.fill(cache, [40, 80, 120, 160])
        total = sum(p.stat().st_size for p in cache.root.rglob("*.json"))
        assert total <= 2 * size + 64
        assert cache.stats.pruned >= 1

    def test_gc_without_a_bound_only_reports(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        keys = self.fill(cache, [40, 80])
        report = cache.gc()
        assert report.entries_pruned == 0 and report.entries_kept == 2
        assert report.bytes_kept > 0
        assert all(cache.get(k) is not None for k in keys.values())

    def test_negative_bound_refused(self, tmp_path):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            CellCache(tmp_path / "cache", max_bytes=-1)


class TestContentAddressing:
    def test_any_recipe_change_moves_the_address(self, victim):
        """Config knob, bank size, eval slice — each shifts the digest,
        so stale entries are unreachable rather than invalidated."""
        attack = fresh_attack(victim)
        images = victim.dataset.test_images[:16]
        labels = victim.dataset.test_labels[:16]
        base = campaign_digest(attack.config, attack.bank_cells,
                               attack.engine.model, images, labels)
        assert base == campaign_digest(attack.config, attack.bank_cells,
                                       attack.engine.model, images, labels)
        tweaked = dataclasses.replace(
            attack.config,
            striker=dataclasses.replace(attack.config.striker,
                                        loops_per_cell=3))
        assert campaign_digest(tweaked, attack.bank_cells,
                               attack.engine.model, images, labels) != base
        assert campaign_digest(attack.config, attack.bank_cells + 1,
                               attack.engine.model, images, labels) != base
        assert campaign_digest(attack.config, attack.bank_cells,
                               attack.engine.model, images[:8],
                               labels[:8]) != base

    def test_backend_and_dtype_policy_move_the_address(self, victim):
        """The execution mode is part of the content address: fp32 (or
        an alternate backend) is tolerance-tier, so its outcomes must
        never be served to — or poisoned by — a byte-parity fxp run."""
        attack = fresh_attack(victim)
        images = victim.dataset.test_images[:16]
        labels = victim.dataset.test_labels[:16]
        base = campaign_digest(attack.config, attack.bank_cells,
                               attack.engine.model, images, labels)
        fp32 = dataclasses.replace(attack.config, dtype_policy="fp32")
        assert campaign_digest(fp32, attack.bank_cells,
                               attack.engine.model, images, labels) != base
        cupy = dataclasses.replace(attack.config, backend="cupy")
        assert campaign_digest(cupy, attack.bank_cells,
                               attack.engine.model, images, labels) != base
        # And the two knobs are themselves distinct address dimensions.
        both = dataclasses.replace(attack.config, backend="cupy",
                                   dtype_policy="fp32")
        digests = {base,
                   campaign_digest(fp32, attack.bank_cells,
                                   attack.engine.model, images, labels),
                   campaign_digest(cupy, attack.bank_cells,
                                   attack.engine.model, images, labels),
                   campaign_digest(both, attack.bank_cells,
                                   attack.engine.model, images, labels)}
        assert len(digests) == 4

    def test_seed_and_cell_separate_keys(self):
        key = CellCache.cell_key(DIGEST, "pool1", 40, 5)
        assert CellCache.cell_key(DIGEST, "pool1", 40, 6) != key
        assert CellCache.cell_key(DIGEST, "pool1", 80, 5) != key
        assert CellCache.cell_key(DIGEST, "conv1", 40, 5) != key


class TestWarmCampaign:
    def test_warm_run_recomputes_nothing_and_matches_cold_bytes(
            self, victim, small_spec, tmp_path):
        """Acceptance: second run against the same cache dir performs
        zero cell dispatches and emits byte-identical JSON."""
        cache_dir = tmp_path / "cellcache"

        def one_run():
            stats = SupervisorStats()
            result = run_campaign(fresh_attack(victim),
                                  victim.dataset.test_images,
                                  victim.dataset.test_labels, small_spec,
                                  cache=cache_dir, stats=stats)
            return _to_json(result, complete=True), stats

        cold_json, cold_stats = one_run()
        assert cold_stats.dispatched == len(small_spec.cells())
        assert cold_stats.cache_hits == 0

        warm_json, warm_stats = one_run()
        assert warm_stats.dispatched == 0
        assert warm_stats.cache_hits == len(small_spec.cells())
        assert warm_json == cold_json

    def test_fxp_cache_never_serves_an_fp32_run(self, victim, small_spec,
                                                tmp_path):
        """Campaign-level twin of the digest test: a cache warmed under
        the fxp reference gives an fp32 campaign zero hits — every cell
        recomputes under its own policy's address."""
        cache_dir = tmp_path / "cellcache"

        def one_run(dtype):
            from repro.accel import AcceleratorEngine
            from repro.config import default_config

            config = dataclasses.replace(default_config(),
                                         dtype_policy=dtype)
            engine = AcceleratorEngine(victim.quantized, config=config,
                                       rng=np.random.default_rng(66))
            attack = DeepStrike(engine, rng=np.random.default_rng(77))
            stats = SupervisorStats()
            run_campaign(attack, victim.dataset.test_images,
                         victim.dataset.test_labels, small_spec,
                         cache=cache_dir, stats=stats)
            return stats

        one_run("fxp")
        fp32_stats = one_run("fp32")
        assert fp32_stats.cache_hits == 0
        assert fp32_stats.dispatched == len(small_spec.cells())
        # Each policy's entries are live under its own digest, though:
        warm = one_run("fp32")
        assert warm.cache_hits == len(small_spec.cells())
        assert warm.dispatched == 0

    def test_corrupt_entry_recomputed_transparently(self, victim,
                                                    small_spec, tmp_path):
        cache_dir = tmp_path / "cellcache"
        cache = CellCache(cache_dir)

        def one_run(stats):
            return _to_json(
                run_campaign(fresh_attack(victim),
                             victim.dataset.test_images,
                             victim.dataset.test_labels, small_spec,
                             cache=cache, stats=stats),
                complete=True)

        cold = one_run(SupervisorStats())
        # Corrupt one entry on disk; the warm run must recompute exactly
        # that cell and still match the cold bytes.
        entries = sorted(cache_dir.rglob("*.json"))
        assert entries
        entries[0].write_text("{definitely not json")
        stats = SupervisorStats()
        assert one_run(stats) == cold
        assert stats.dispatched == 1
        assert stats.cache_hits == len(small_spec.cells()) - 1
