"""Campaign orchestration and persistence tests."""

import numpy as np
import pytest

from repro.core import CampaignSpec, DeepStrike, load_campaign, run_campaign, \
    save_campaign
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def small_campaign(lenet_engine_module, victim_module):
    attack = DeepStrike(lenet_engine_module, rng=np.random.default_rng(77))
    spec = CampaignSpec(
        sweeps=(("conv2", (500, 2000)), ("pool1", (80,))),
        blind_counts=(500,),
        eval_images=48,
        seed=3,
    )
    return run_campaign(attack, victim_module.dataset.test_images,
                        victim_module.dataset.test_labels, spec)


@pytest.fixture(scope="module")
def lenet_engine_module():
    from repro.accel import AcceleratorEngine
    from repro.zoo import get_pretrained

    return AcceleratorEngine(get_pretrained().quantized,
                             rng=np.random.default_rng(66))


@pytest.fixture(scope="module")
def victim_module():
    from repro.zoo import get_pretrained

    return get_pretrained()


class TestSpec:
    def test_default_spec_matches_bench(self):
        spec = CampaignSpec.fig5b_default()
        targets = [layer for layer, _ in spec.sweeps]
        assert targets == ["conv1", "conv2", "fc1", "pool1"]
        assert 4500 in dict(spec.sweeps)["conv2"]

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError):
            CampaignSpec(sweeps=())

    def test_unsorted_counts_rejected(self):
        with pytest.raises(ConfigError):
            CampaignSpec(sweeps=(("conv2", (100, 50)),))


class TestRun:
    def test_all_sweeps_present(self, small_campaign):
        names = [s.target_layer for s in small_campaign.sweeps]
        assert names == ["conv2", "pool1", "blind"]

    def test_clean_accuracy_recorded(self, small_campaign):
        assert 0.9 <= small_campaign.clean_accuracy <= 1.0

    def test_outcomes_per_count(self, small_campaign):
        assert len(small_campaign.sweep("conv2").outcomes) == 2
        assert small_campaign.sweep("conv2").strike_counts == [500, 2000]

    def test_most_sensitive_target(self, small_campaign):
        assert small_campaign.most_sensitive_target() in ("conv2", "blind",
                                                          "pool1")
        drops = small_campaign.max_drops()
        assert drops["pool1"] <= 0.05

    def test_missing_sweep_lookup(self, small_campaign):
        with pytest.raises(ConfigError):
            small_campaign.sweep("fc9")


class TestPersistence:
    def test_round_trip(self, small_campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(small_campaign, path)
        loaded = load_campaign(path)
        assert loaded.clean_accuracy == small_campaign.clean_accuracy
        assert loaded.spec == small_campaign.spec
        for a, b in zip(loaded.sweeps, small_campaign.sweeps):
            assert a.target_layer == b.target_layer
            assert a.accuracies == b.accuracies

    def test_version_check(self, small_campaign, tmp_path):
        import json

        path = tmp_path / "campaign.json"
        save_campaign(small_campaign, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigError):
            load_campaign(path)
