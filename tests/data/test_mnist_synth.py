"""Synthetic MNIST substrate tests."""

import numpy as np
import pytest

from repro.data import DIGIT_STROKES, SyntheticMNIST, digit_strokes, render_digit
from repro.errors import ConfigError


class TestGlyphs:
    def test_all_ten_digits_defined(self):
        assert sorted(DIGIT_STROKES) == list(range(10))

    def test_strokes_inside_unit_square(self):
        for digit in range(10):
            for stroke in digit_strokes(digit):
                assert stroke.min() >= -0.05
                assert stroke.max() <= 1.05

    def test_strokes_are_copies(self):
        a = digit_strokes(3)
        a[0][:] = 0.0
        b = digit_strokes(3)
        assert not np.allclose(a[0], b[0])

    def test_unknown_digit_rejected(self):
        with pytest.raises(ConfigError):
            digit_strokes(10)


class TestRendering:
    def test_canonical_render_deterministic(self):
        a = render_digit(7, augment=False)
        b = render_digit(7, augment=False)
        np.testing.assert_array_equal(a, b)

    def test_image_range_and_shape(self):
        img = render_digit(0, rng=np.random.default_rng(1))
        assert img.shape == (28, 28)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_ink_present(self):
        for digit in range(10):
            img = render_digit(digit, augment=False)
            assert img.max() > 0.8, f"digit {digit} rendered blank"
            assert 0.03 < img.mean() < 0.5

    def test_augmentation_varies(self):
        rng = np.random.default_rng(2)
        a = render_digit(5, rng=rng)
        b = render_digit(5, rng=rng)
        assert not np.allclose(a, b)

    def test_digits_distinguishable(self):
        """Canonical renders of distinct digits must differ substantially."""
        renders = [render_digit(d, augment=False) for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                diff = np.abs(renders[i] - renders[j]).mean()
                assert diff > 0.01, f"digits {i} and {j} look identical"

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ConfigError):
            render_digit(1, size=4)


class TestDataset:
    def test_generation_shapes(self):
        ds = SyntheticMNIST.generate(n_train=100, n_test=40, seed=0)
        assert ds.train_images.shape == (100, 1, 28, 28)
        assert ds.test_labels.shape == (40,)
        assert ds.n_train == 100 and ds.n_test == 40

    def test_reproducible_by_seed(self):
        a = SyntheticMNIST.generate(n_train=50, n_test=20, seed=3)
        b = SyntheticMNIST.generate(n_train=50, n_test=20, seed=3)
        np.testing.assert_array_equal(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.test_labels, b.test_labels)

    def test_different_seeds_differ(self):
        a = SyntheticMNIST.generate(n_train=50, n_test=20, seed=3)
        b = SyntheticMNIST.generate(n_train=50, n_test=20, seed=4)
        assert not np.allclose(a.train_images, b.train_images)

    def test_classes_balanced(self):
        ds = SyntheticMNIST.generate(n_train=200, n_test=50, seed=1)
        counts = ds.class_counts("train")
        assert counts.sum() == 200
        assert counts.min() == 20 and counts.max() == 20

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            SyntheticMNIST.generate(n_train=5, n_test=50)
