"""Every module imports and every __all__ name resolves."""

import importlib
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__,
                                            prefix="repro.")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_version_is_set():
    assert repro.__version__
