"""Power striker cell/bank tests."""

import numpy as np
import pytest

from repro.config import default_config
from repro.errors import ConfigError
from repro.fpga import DesignRuleChecker
from repro.sensors import GateDelayModel
from repro.striker import (
    StrikerBank,
    StrikerCell,
    build_ro_cell_netlist,
    build_striker_cell_netlist,
    effective_bank_current,
)


@pytest.fixture(scope="module")
def cell():
    cfg = default_config()
    return StrikerCell(cfg.striker, GateDelayModel(cfg.delay))


class TestCellNetlist:
    def test_structure(self):
        nl = build_striker_cell_netlist()
        assert nl.lut_count() == 2  # the LUT6_2 + the Start driver
        assert nl.latch_count() == 2

    def test_passes_vendor_drc_fails_strict(self):
        nl = build_striker_cell_netlist()
        assert DesignRuleChecker().check(nl).passed
        assert not DesignRuleChecker(strict_latch_scan=True).check(nl).passed

    def test_two_loops_through_latches(self):
        nl = build_striker_cell_netlist()
        loops = nl.combinational_cycles(transparent_latches=True)
        assert len(loops) >= 2

    def test_bank_shares_one_start_net(self):
        nl = build_striker_cell_netlist(0)
        build_striker_cell_netlist(1, netlist=nl)
        start = nl.get_net("start")
        assert len(start.sinks) == 4  # 2 latches x 2 cells

    def test_ro_cell_is_banned(self):
        assert not DesignRuleChecker().check(build_ro_cell_netlist()).passed


class TestCellModel:
    def test_oscillates_near_design_frequency(self, cell):
        f = cell.oscillation_frequency(1.0)
        assert f == pytest.approx(250e6, rel=1e-6)

    def test_droop_slows_oscillation(self, cell):
        assert cell.oscillation_frequency(0.9) < cell.oscillation_frequency(1.0)

    def test_current_at_nominal(self, cell):
        assert cell.current(1.0) == pytest.approx(
            default_config().striker.current_per_cell
        )

    def test_current_self_limits_under_droop(self, cell):
        assert cell.current(0.85) < cell.current(1.0)

    def test_disabled_cell_draws_nothing(self, cell):
        assert cell.current(1.0, enabled=False) == 0.0

    def test_vectorized_current(self, cell):
        volts = np.linspace(0.85, 1.0, 10)
        currents = cell.current(volts)
        assert currents.shape == (10,)
        assert np.all(np.diff(currents) > 0)


class TestBank:
    def test_budget_scales_with_cells(self):
        cfg = default_config()
        bank = StrikerBank(1000, cfg)
        assert bank.budget.luts == 1001
        assert bank.budget.latches == 2000

    def test_structural_truncation_keeps_full_budget(self):
        cfg = default_config()
        bank = StrikerBank(10_000, cfg, structural_cells=64)
        assert bank.budget.luts == 10_001
        assert bank.netlist.lut_count() == 64 + 1

    def test_draws_only_when_started(self):
        cfg = default_config()
        bank = StrikerBank(1000, cfg)
        assert bank.current_draw(0) == 0.0
        bank.set_start(True)
        assert bank.current_draw(1) > 0.03

    def test_voltage_feedback_reduces_draw(self):
        cfg = default_config()
        bank = StrikerBank(1000, cfg)
        bank.set_start(True)
        nominal = bank.current_draw(0)
        bank.on_voltage(0, 0.85)
        assert bank.current_draw(1) < nominal

    def test_reset_clears_start(self):
        cfg = default_config()
        bank = StrikerBank(100, cfg)
        bank.set_start(True)
        bank.reset()
        assert not bank.started

    def test_empty_bank_rejected(self):
        with pytest.raises(ConfigError):
            StrikerBank(0, default_config())

    def test_effective_current_below_nominal(self, cell):
        cfg = default_config()
        eff = effective_bank_current(24_000, cell, cfg.pdn)
        nominal = 24_000 * cell.current(1.0)
        assert 0.5 * nominal < eff < nominal

    def test_effective_current_monotone_in_cells(self, cell):
        cfg = default_config()
        currents = [effective_bank_current(n, cell, cfg.pdn)
                    for n in (0, 4000, 8000, 16000, 24000)]
        assert currents[0] == 0.0
        assert all(a < b for a, b in zip(currents, currents[1:]))

    def test_bank_effective_current_bounds_active(self):
        cfg = default_config()
        bank = StrikerBank(100, cfg)
        with pytest.raises(ConfigError):
            bank.effective_current(n_active=101)
