"""Seeded determinism across the whole stack.

Reproducibility is the contract that makes simulated experiments
citable: identical seeds must produce identical traces, plans, fault
patterns and accuracies, while different seeds must actually differ.
"""

import numpy as np
import pytest

from repro.accel import AcceleratorEngine
from repro.core import DeepStrike
from repro.dsp import FaultCharacterization
from repro.nn import build_probe_model, quantize_model
from repro.nn.model import PROBE_INPUT_SHAPE
from repro.testbed import build_attack_testbed
from repro.core import AttackScheme


class TestAttackDeterminism:
    def _attacked_logits(self, victim, seed):
        engine = AcceleratorEngine(victim.quantized,
                                   rng=np.random.default_rng(seed))
        attack = DeepStrike(engine, rng=engine.rng)
        plan = attack.plan_for_layer("conv2", 2000)
        images = victim.dataset.test_images[:24]
        return engine.infer_under_attack(images, plan.struck)

    def test_same_seed_same_outcome(self, victim):
        a = self._attacked_logits(victim, seed=5)
        b = self._attacked_logits(victim, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_faults(self, victim):
        a = self._attacked_logits(victim, seed=5)
        b = self._attacked_logits(victim, seed=6)
        assert not np.array_equal(a, b)

    def test_plan_voltages_deterministic(self, victim):
        engine = AcceleratorEngine(victim.quantized,
                                   rng=np.random.default_rng(1))
        attack = DeepStrike(engine)
        v1 = attack.plan_for_layer("conv2", 500).struck[0].voltages
        v2 = attack.plan_for_layer("conv2", 500).struck[0].voltages
        np.testing.assert_array_equal(v1, v2)


class TestHarnessDeterminism:
    def test_characterization_reproducible(self):
        a = FaultCharacterization(seed=9).run(16000, trials=2000)
        b = FaultCharacterization(seed=9).run(16000, trials=2000)
        assert a.duplication_rate == b.duplication_rate
        assert a.random_rate == b.random_rate

    def test_characterization_seed_sensitivity(self):
        a = FaultCharacterization(seed=9).run(16000, trials=2000)
        b = FaultCharacterization(seed=10).run(16000, trials=2000)
        assert (a.duplication_rate, a.random_rate) \
            != (b.duplication_rate, b.random_rate)


class TestCosimDeterminism:
    def test_testbed_runs_identically(self):
        model = quantize_model(build_probe_model())

        def run(seed):
            tb = build_attack_testbed(model, input_shape=PROBE_INPUT_SHAPE,
                                      seed=seed)
            tb.scheduler.load_scheme(AttackScheme(50, 20, 10))
            return tb.run(3000)

        np.testing.assert_array_equal(run(42), run(42))

    def test_testbed_seed_changes_noise(self):
        model = quantize_model(build_probe_model())

        def run(seed):
            tb = build_attack_testbed(model, input_shape=PROBE_INPUT_SHAPE,
                                      seed=seed)
            tb.scheduler.load_scheme(AttackScheme(50, 20, 10))
            return tb.run(1500)

        assert not np.array_equal(run(42), run(43))
