"""Attack portability to a second architecture (paper future work)."""

import numpy as np
import pytest

from repro.accel import AcceleratorEngine
from repro.core import DeepStrike
from repro.zoo import get_pretrained


@pytest.fixture(scope="module")
def cnn7():
    return get_pretrained(model_name="cnn7")


@pytest.fixture(scope="module")
def cnn7_engine(cnn7):
    return AcceleratorEngine(cnn7.quantized,
                             rng=np.random.default_rng(111))


class TestCNN7Deployment:
    def test_trains_to_operating_regime(self, cnn7):
        assert cnn7.quantized_accuracy >= 0.93
        assert cnn7.name == "cnn7"

    def test_maps_onto_the_accelerator(self, cnn7_engine):
        kinds = [p.kind for p in cnn7_engine.plans]
        assert kinds == ["conv", "pool", "conv", "pool", "conv",
                         "dense", "dense"]

    def test_schedule_covers_all_layers(self, cnn7_engine):
        names = cnn7_engine.schedule.layer_names()
        assert "c7_conv2" in names and "c7_fc1" in names

    def test_clean_engine_matches_quantized_model(self, cnn7, cnn7_engine):
        images = cnn7.dataset.test_images[:16]
        np.testing.assert_allclose(cnn7_engine.infer_clean(images),
                                   cnn7.quantized.forward(images))


class TestCNN7Attack:
    def test_deepstrike_ports_to_cnn7(self, cnn7, cnn7_engine):
        """The same attack stack, untouched, damages the new victim."""
        attack = DeepStrike(cnn7_engine, rng=np.random.default_rng(112))
        images = cnn7.dataset.test_images[:96]
        labels = cnn7.dataset.test_labels[:96]
        # The longest conv is the analogue of LeNet's CONV2 target.
        convs = [p for p in cnn7_engine.plans if p.kind == "conv"]
        target = max(convs, key=lambda p: p.cycles)
        plan = attack.plan_for_layer(target.name,
                                     min(4500, target.cycles - 10))
        outcome = attack.execute(images, labels, plan)
        assert outcome.accuracy_drop > 0.02

    def test_pooling_still_immune(self, cnn7, cnn7_engine):
        attack = DeepStrike(cnn7_engine, rng=np.random.default_rng(113))
        images = cnn7.dataset.test_images[:96]
        labels = cnn7.dataset.test_labels[:96]
        pool = cnn7_engine.schedule.window("c7_pool1").plan
        plan = attack.plan_for_layer("c7_pool1", pool.cycles // 2)
        outcome = attack.execute(images, labels, plan)
        assert outcome.accuracy_drop <= 0.03