"""Chaos-injection integration tests.

The reliability layer's contract: under injected sensor noise, dropped
triggers, mangled link frames, and killed campaign cells, the attack
loop either converges anyway or fails with a *typed* error — never
silently wrong.  ``CHAOS_SEED`` (env var) reseeds the whole suite so CI
can sweep seeds.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import CHAOS_PRESETS, ChaosInjector, chaos_preset
from repro.config import ReliabilityConfig, default_config
from repro.core import (
    AttackScheme,
    CampaignSpec,
    DeepStrike,
    DetectorState,
    DNNStartDetector,
    RemoteAttacker,
    UARTLink,
    run_campaign,
)
from repro.core.link_faults import LinkFaultConfig, LinkFaultModel
from repro.core.scheduler import AttackScheduler
from repro.errors import ChaosError, LinkDeadError
from repro.nn.model import PROBE_INPUT_SHAPE
from repro.sensors.calibration import theta_for_target
from repro.sensors.delay import GateDelayModel
from repro.striker import StrikerBank
from repro.testbed import build_attack_testbed

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))


def make_remote(fault_model=None, reliability=None):
    cfg = default_config()
    bank = StrikerBank(100, cfg, structural_cells=4)
    theta = theta_for_target(cfg.tdc, GateDelayModel(cfg.delay))
    scheduler = AttackScheduler(cfg, bank, theta,
                                rng=np.random.default_rng(0))
    return RemoteAttacker(UARTLink(fault_model=fault_model), scheduler,
                          reliability=reliability)


@pytest.fixture(scope="module")
def probe_testbed():
    from repro.nn import build_probe_model, quantize_model

    return build_attack_testbed(quantize_model(build_probe_model()),
                                input_shape=PROBE_INPUT_SHAPE,
                                bank_cells=5000, seed=2024)


# ---------------------------------------------------------------------------
# Property tests (hypothesis)
# ---------------------------------------------------------------------------


class TestArqProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        drop=st.floats(0.0, 0.15),
        corrupt=st.floats(0.0, 0.1),
        truncate=st.floats(0.0, 0.05),
        seed=st.integers(0, 2**16),
    )
    def test_moderately_lossy_links_always_converge(self, drop, corrupt,
                                                    truncate, seed):
        """Fault mass <= 0.3 with a generous retry budget: the upload
        must succeed, and the scheme the device loads must be intact."""
        model = LinkFaultModel(
            LinkFaultConfig(drop=drop, corrupt=corrupt, truncate=truncate),
            seed=seed ^ CHAOS_SEED)
        remote = make_remote(
            fault_model=model,
            reliability=ReliabilityConfig(max_retries=60, op_timeout_s=60.0))
        loaded = []
        orig = remote.scheduler.load_scheme
        remote.scheduler.load_scheme = \
            lambda s: (loaded.append(s), orig(s))[1]
        sent = AttackScheme(attack_delay=10, attack_period=5,
                            number_of_attacks=3, strike_cycles=2)
        assert remote.upload_scheme(sent)
        assert loaded and all(s == sent for s in loaded)

    @settings(max_examples=15, deadline=None)
    @given(
        probability=st.floats(0.0, 0.9),
        seed=st.integers(0, 2**16),
    )
    def test_no_silent_failure_at_any_loss_rate(self, probability, seed):
        """Arbitrarily hostile links: success or LinkDeadError, and any
        scheme that reaches the scheduler is byte-exact."""
        model = LinkFaultModel(LinkFaultConfig.lossy(probability),
                               seed=seed ^ CHAOS_SEED)
        remote = make_remote(fault_model=model,
                             reliability=ReliabilityConfig(max_retries=8))
        loaded = []
        orig = remote.scheduler.load_scheme
        remote.scheduler.load_scheme = \
            lambda s: (loaded.append(s), orig(s))[1]
        sent = AttackScheme(attack_delay=7, attack_period=4,
                            number_of_attacks=2, strike_cycles=1)
        try:
            assert remote.upload_scheme(sent)
        except LinkDeadError:
            pass
        assert all(s == sent for s in loaded)


class TestDetectorProperties:
    @settings(max_examples=50, deadline=None)
    @given(data=st.data(),
           debounce=st.integers(2, 6),
           glitches=st.integers(1, 3))
    def test_hysteresis_forgives_in_streak_glitches(self, data, debounce,
                                                    glitches):
        det = DNNStartDetector(debounce=debounce,
                               glitch_tolerance=glitches)
        for _ in range(debounce):
            det._advance(4)  # arm
        assert det.state is DetectorState.ARMED
        # A trigger streak with up to `glitches` bad samples inside it.
        stream = [3] * debounce
        for _ in range(glitches):
            pos = data.draw(st.integers(1, len(stream) - 1))
            stream.insert(pos, 7)
        assert any(det._advance(hw) for hw in stream)

    @settings(max_examples=30, deadline=None)
    @given(debounce=st.integers(2, 6), pos=st.data())
    def test_strict_detector_resets_on_any_glitch(self, debounce, pos):
        det = DNNStartDetector(debounce=debounce, glitch_tolerance=0)
        for _ in range(debounce):
            det._advance(4)
        stream = [3] * debounce
        stream.insert(pos.draw(st.integers(1, debounce - 1)), 7)
        assert not any(det._advance(hw) for hw in stream)
        assert det.state is DetectorState.ARMED


class TestInjectorProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 300))
    def test_perturbation_is_seeded_and_bounded(self, seed, n):
        trace = np.arange(n) % 64
        a = ChaosInjector(chaos_preset("hostile", seed=seed)) \
            .perturb_trace(trace, 0, 128)
        b = ChaosInjector(chaos_preset("hostile", seed=seed)) \
            .perturb_trace(trace, 0, 128)
        assert a.shape == trace.shape
        assert (a == b).all()
        assert a.min() >= 0 and a.max() <= 128

    def test_off_preset_is_identity(self):
        trace = np.arange(500) % 64
        out = ChaosInjector(chaos_preset("off", seed=CHAOS_SEED)) \
            .perturb_trace(trace, 0, 128)
        assert (out == trace).all()

    def test_all_presets_are_valid(self):
        for name in CHAOS_PRESETS:
            chaos_preset(name, seed=CHAOS_SEED)


# ---------------------------------------------------------------------------
# The closed loop under fire
# ---------------------------------------------------------------------------


class TestClosedLoopUnderChaos:
    def test_noisy_chaos_closed_loop_converges(self, probe_testbed):
        """Sensor noise + lossy link: the remote attack still lands."""
        tb = probe_testbed
        tb.board.reset()
        tb.scheduler.detector.glitch_tolerance = 2  # hysteresis on
        injector = ChaosInjector(chaos_preset("noisy", seed=CHAOS_SEED))
        link = UARTLink()
        remote = RemoteAttacker(link, tb.scheduler)
        try:
            with injector.applied(scheduler=tb.scheduler, link=link):
                for _ in range(10):  # enough traffic to exercise the ARQ
                    assert remote.upload_scheme(AttackScheme(50, 9, 5))
                tb.run(4000)
                assert tb.scheduler.trigger_tick is not None
                trace = remote.download_trace(max_samples=256)
            assert trace.shape == (256,)
            assert link.stats.faulted > 0
            assert tb.scheduler.readout_filter is None  # restored
        finally:
            tb.scheduler.detector.glitch_tolerance = 0

    def test_dropped_triggers_rearm_not_deadlock(self, probe_testbed):
        """Swallowed trigger edges: a sustained droop re-fires later."""
        tb = probe_testbed
        tb.board.reset()
        spec = chaos_preset("hostile", seed=CHAOS_SEED)
        injector = ChaosInjector(spec)
        tb.scheduler.load_scheme(AttackScheme(10, 5, 3))
        with injector.on_detector(tb.scheduler.detector):
            tb.run(4000)
        if injector.stats["dropped_triggers"]:
            # At least one edge was swallowed and the loop recovered (or
            # ran out of trace; either way the FSM is in a legal state).
            assert tb.scheduler.detector.state in (DetectorState.ARMED,
                                                   DetectorState.TRIGGERED)
        else:
            assert tb.scheduler.trigger_tick is not None


class TestCampaignUnderChaos:
    @pytest.fixture(scope="class")
    def victim(self):
        from repro.zoo import get_pretrained

        return get_pretrained()

    def _attack(self, victim):
        from repro.accel import AcceleratorEngine

        engine = AcceleratorEngine(victim.quantized,
                                   rng=np.random.default_rng(66))
        return DeepStrike(engine, rng=np.random.default_rng(77))

    def test_chaos_failures_are_isolated_and_resumable(self, victim,
                                                       tmp_path):
        spec = CampaignSpec(sweeps=(("pool1", (40,)),), blind_counts=(40,),
                            eval_images=16, seed=5)
        injector = ChaosInjector(
            chaos_preset("hostile", seed=CHAOS_SEED))
        ckpt = tmp_path / "ckpt.json"
        result = run_campaign(self._attack(victim),
                              victim.dataset.test_images,
                              victim.dataset.test_labels, spec,
                              checkpoint_path=ckpt,
                              before_cell=injector.campaign_cell_hook)
        done = sum(len(s.outcomes) for s in result.sweeps)
        assert done + len(result.failures) == len(spec.cells())
        assert all(f.error_type == "ChaosError" for f in result.failures)

        # Chaos off, resume from the checkpoint: everything completes.
        resumed = run_campaign(self._attack(victim),
                               victim.dataset.test_images,
                               victim.dataset.test_labels, spec,
                               resume_from=ckpt)
        assert resumed.failures == []
        assert sum(len(s.outcomes)
                   for s in resumed.sweeps) == len(spec.cells())
