"""The attack-vs-defense arms race, end to end on the real victim.

The acceptance experiment for the detect-and-recover runtime: under a
mid-intensity strike the defense buys back a measurable amount of
accuracy for a reported replay overhead, and on unattacked traffic it
costs nothing.
"""

import numpy as np
import pytest

from repro.defense import ArmsRaceStudy, default_defenses

#: The repo's standard mid-intensity operating point: the default attack
#: bank (DEFAULT_ATTACK_CELLS) at the strike count the Fig 5(b)
#: experiments use against conv2.
MID_CELLS = 5500
STRIKES = 4500


@pytest.fixture(scope="module")
def study(victim):
    return ArmsRaceStudy(victim.quantized,
                         victim.dataset.test_images[:64],
                         victim.dataset.test_labels[:64],
                         seed=3)


@pytest.fixture(scope="module")
def mid_cells(study):
    return study.sweep([(MID_CELLS, STRIKES)])


class TestArmsRace:
    def test_defense_buys_back_accuracy_under_attack(self, mid_cells):
        undefended = next(c for c in mid_cells if c.defense == "none")
        recovered = next(c for c in mid_cells if c.defense == "recover")
        # Direction 1: the attack hurts, and the defense measurably
        # repairs it.
        assert undefended.accuracy_drop > 0.05
        assert recovered.attacked_accuracy \
            >= undefended.attacked_accuracy + 0.05
        assert recovered.residual_mismatch_rate \
            < undefended.residual_mismatch_rate
        # The repair is bought with replays, and the bill is itemised.
        assert recovered.razor_flags > 0
        assert recovered.replays > 0
        assert recovered.replay_overhead > 0.0
        assert undefended.replay_overhead == 0.0

    def test_defense_costs_nothing_without_an_attack(self, study):
        """Direction 2: zero striker cells -> no droop, no faults, no
        flags, no replays — the hardened engine's overhead is exactly 0
        and its outputs match the undefended engine's."""
        quiet = study.sweep([(0, STRIKES)])
        undefended = next(c for c in quiet if c.defense == "none")
        recovered = next(c for c in quiet if c.defense == "recover")
        assert undefended.accuracy_drop == 0.0
        assert recovered.accuracy_drop == 0.0
        assert recovered.attacked_accuracy == undefended.attacked_accuracy
        assert recovered.replay_overhead == 0.0
        assert recovered.razor_flags == 0
        assert recovered.replays == 0

    def test_cells_reproduce_in_isolation(self, study, mid_cells):
        """Per-cell blake2s seeds: re-running one grid cell alone gives
        the identical record, replayed layers included."""
        label, recovery = default_defenses()[1]
        rerun = study.run_cell(MID_CELLS, STRIKES, recovery, label)
        original = next(c for c in mid_cells if c.defense == label)
        assert rerun == original

    def test_intensity_escalation_overwhelms_nothing_yet(self, study):
        """At the sweep's high end the half-rate replay still clears the
        droop: recovery holds while the undefended drop deepens."""
        cells = study.sweep([(8000, STRIKES)])
        undefended = next(c for c in cells if c.defense == "none")
        recovered = next(c for c in cells if c.defense == "recover")
        assert undefended.accuracy_drop > 0.2
        assert recovered.accuracy_drop <= 0.05
        assert recovered.exhausted == 0
