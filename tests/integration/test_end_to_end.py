"""End-to-end integration tests: the full attack loop on the live board."""

import numpy as np
import pytest

from repro.core import AttackScheme, DeepStrike, RemoteAttacker, UARTLink
from repro.errors import SchedulerError
from repro.nn.model import PROBE_INPUT_SHAPE
from repro.testbed import build_attack_testbed


@pytest.fixture(scope="module")
def probe_testbed(probe_quantized_module):
    return build_attack_testbed(probe_quantized_module,
                                input_shape=PROBE_INPUT_SHAPE,
                                bank_cells=5000, seed=2024)


@pytest.fixture(scope="module")
def probe_quantized_module():
    from repro.nn import build_probe_model, quantize_model

    return quantize_model(build_probe_model())


class TestTestbedAssembly:
    def test_three_tenants_admitted(self, probe_testbed):
        names = {t.name for t in probe_testbed.board.tenants()}
        assert names == {"victim_dnn", "attack_scheduler", "striker"}

    def test_striker_placed_away_from_victim(self, probe_testbed):
        sep = probe_testbed.board.hypervisor.floorplan.separation(
            "victim_dnn", "striker"
        )
        assert sep > 40

    def test_tdc_calibrated_near_paper_point(self, probe_testbed):
        assert abs(probe_testbed.nominal_readout - 90) <= 4

    def test_striker_drc_report_clean(self, probe_testbed):
        assert probe_testbed.board.hypervisor.drc_report("striker").passed


class TestClosedLoop:
    def test_detector_fires_at_first_layer(self, probe_testbed):
        tb = probe_testbed
        tb.board.reset()
        tb.scheduler.load_scheme(AttackScheme(10, 5, 3))
        tb.run(4000)
        first_layer_tick = tb.engine.schedule.windows()[0].start_cycle * 2
        assert tb.scheduler.trigger_tick is not None
        assert 0 <= tb.scheduler.trigger_tick - first_layer_tick <= 24

    def test_strikes_dip_the_rail(self, probe_testbed):
        tb = probe_testbed
        tb.board.reset()
        conv = tb.engine.schedule.window("conv3x3")
        trigger = tb.engine.schedule.windows()[0].start_cycle + 2
        scheme = AttackScheme(
            attack_delay=conv.start_cycle - trigger,
            attack_period=20,
            number_of_attacks=40,
        )
        tb.scheduler.load_scheme(scheme)
        volts = tb.run(9000)
        assert volts.min() < 0.955  # striker-driven dips

    def test_unarmed_scheduler_never_strikes(self, probe_testbed):
        tb = probe_testbed
        tb.board.reset()
        tb.scheduler.load_scheme(AttackScheme(10, 5, 0))  # zero attacks
        volts = tb.run(2000)
        assert not tb.bank.started
        assert volts.min() > 0.955

    def test_detector_without_scheme_raises(self, probe_quantized_module):
        tb = build_attack_testbed(probe_quantized_module,
                                  input_shape=PROBE_INPUT_SHAPE, seed=7)
        with pytest.raises(SchedulerError):
            tb.run(4000)  # trigger fires with an empty signal RAM

    def test_remote_reconfiguration_round_trip(self, probe_testbed):
        tb = probe_testbed
        tb.board.reset()
        remote = RemoteAttacker(UARTLink(), tb.scheduler)
        assert remote.upload_scheme(AttackScheme(50, 9, 5))
        tb.run(1200)
        trace = remote.download_trace(max_samples=256)
        assert trace.shape == (256,)
        assert trace.max() <= 128


class TestBlackBoxAttackPath:
    """Profile -> plan from profile -> execute: no schedule oracle."""

    def test_profile_guided_plan_hits_target_layer(self, victim, config):
        from repro.accel import AcceleratorEngine
        from repro.sensors import GateDelayModel, TDCSensor
        from repro.sensors.calibration import theta_for_target

        engine = AcceleratorEngine(victim.quantized, config=config,
                                   rng=np.random.default_rng(31))
        attack = DeepStrike(engine, rng=np.random.default_rng(32))
        delay_model = GateDelayModel(config.delay)
        idle_v = 0.9867  # settled idle rail
        theta = theta_for_target(config.tdc, delay_model, voltage=idle_v)
        sensor = TDCSensor(config.tdc, delay_model, theta,
                           rng=np.random.default_rng(33))
        library = attack.profile_victim(sensor, nominal_readout=92,
                                        n_traces=2)
        assert len(library) == 5  # conv1, pool1, conv2, fc1, fc2
        kinds = [s.kind_guess for s in library]
        assert kinds[0] == "conv" and kinds[2] == "conv"
        assert kinds[3] == "fc"

        # Target the deep-droop layer the profile says is the 2nd conv.
        plan = attack.plan_from_profile(library, target_order=2,
                                        n_strikes=800)
        landed_layers = {s.layer_name for s in plan.struck}
        assert "conv2" in landed_layers
        conv2_hits = sum(
            s.count for s in plan.struck if s.layer_name == "conv2"
        )
        assert conv2_hits > 0.9 * 800

    def test_profile_guided_attack_damages_accuracy(self, victim, config):
        from repro.accel import AcceleratorEngine
        from repro.sensors import GateDelayModel, TDCSensor
        from repro.sensors.calibration import theta_for_target

        engine = AcceleratorEngine(victim.quantized, config=config,
                                   rng=np.random.default_rng(41))
        attack = DeepStrike(engine, rng=np.random.default_rng(42))
        delay_model = GateDelayModel(config.delay)
        theta = theta_for_target(config.tdc, delay_model, voltage=0.9867)
        sensor = TDCSensor(config.tdc, delay_model, theta,
                           rng=np.random.default_rng(43))
        library = attack.profile_victim(sensor, nominal_readout=92,
                                        n_traces=2)
        plan = attack.plan_from_profile(library, target_order=2,
                                        n_strikes=4500)
        images = victim.dataset.test_images[:96]
        labels = victim.dataset.test_labels[:96]
        outcome = attack.execute(images, labels, plan)
        assert outcome.accuracy_drop > 0.03
