"""Unit tests for the behavioral FPGA primitives."""

import pytest

from repro.errors import ConfigError
from repro.fpga import BUFG, CARRY4, FDRE, LDCE, LUT1, LUT6_2
from repro.fpga.primitives import PortDirection


class TestLUT1:
    def test_inverter_truth_table(self):
        inv = LUT1("inv", init=0b01)
        assert inv.evaluate(False) is True
        assert inv.evaluate(True) is False

    def test_buffer_truth_table(self):
        buf = LUT1("buf", init=0b10)
        assert buf.evaluate(False) is False
        assert buf.evaluate(True) is True

    def test_init_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            LUT1("bad", init=0b100)

    def test_all_paths_combinational(self):
        lut = LUT1("l")
        assert lut.is_combinational_path("I0", "O")


class TestLUT6_2:
    def test_dual_inverter_configuration(self):
        lut = LUT6_2("striker_lut")
        assert lut.is_dual_inverter()
        o6, o5 = lut.evaluate(I0=False, I5=True)
        assert o6 is True and o5 is True
        o6, o5 = lut.evaluate(I0=True, I5=True)
        assert o6 is False and o5 is False

    def test_non_inverter_init_detected(self):
        lut = LUT6_2("other", init=0)
        assert not lut.is_dual_inverter()

    def test_o5_ignores_i5(self):
        lut = LUT6_2("l")
        _, o5_low = lut.evaluate(I0=False, I5=False)
        _, o5_high = lut.evaluate(I0=False, I5=True)
        assert o5_low == o5_high

    def test_o6_is_combinational_from_every_input(self):
        lut = LUT6_2("l")
        for k in range(6):
            assert lut.is_combinational_path(f"I{k}", "O6")

    def test_o5_not_fed_by_i5(self):
        lut = LUT6_2("l")
        assert not lut.is_combinational_path("I5", "O5")

    def test_init_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            LUT6_2("bad", init=1 << 64)


class TestLDCE:
    def test_transparent_when_gated(self):
        latch = LDCE("l")
        assert latch.evaluate(d=True, g=True) is True
        assert latch.evaluate(d=False, g=True) is False

    def test_holds_when_gate_low(self):
        latch = LDCE("l")
        latch.evaluate(d=True, g=True)
        assert latch.evaluate(d=False, g=False) is True

    def test_clear_dominates(self):
        latch = LDCE("l")
        latch.evaluate(d=True, g=True)
        assert latch.evaluate(d=True, g=True, clr=True) is False

    def test_gate_enable_blocks_update(self):
        latch = LDCE("l")
        latch.evaluate(d=True, g=True)
        assert latch.evaluate(d=False, g=True, ge=False) is True

    def test_classified_as_storage_with_no_comb_paths(self):
        assert LDCE.IS_STORAGE
        assert not LDCE.COMB_PATHS
        assert ("D", "Q") in LDCE.TRANSPARENT_PATHS

    def test_costs_one_latch(self):
        assert LDCE.LATCH_COST == 1 and LDCE.FF_COST == 0


class TestFDRE:
    def test_captures_on_edge(self):
        ff = FDRE("f")
        assert ff.clock_edge(d=True) is True
        assert ff.clock_edge(d=False) is False

    def test_clock_enable(self):
        ff = FDRE("f")
        ff.clock_edge(d=True)
        assert ff.clock_edge(d=False, ce=False) is True

    def test_synchronous_reset_dominates(self):
        ff = FDRE("f")
        ff.clock_edge(d=True)
        assert ff.clock_edge(d=True, r=True) is False


class TestPortHandling:
    def test_unknown_port_rejected(self):
        with pytest.raises(ConfigError):
            LUT1("l").port_direction("O6")

    def test_directions(self):
        lut = LUT6_2("l")
        assert lut.port_direction("I3") is PortDirection.INPUT
        assert lut.port_direction("O5") is PortDirection.OUTPUT

    def test_inputs_outputs_lists(self):
        carry = CARRY4("c")
        assert "CI" in carry.inputs()
        assert "CO3" in carry.outputs()

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            BUFG("")

    def test_uids_unique(self):
        a, b = LUT1("a"), LUT1("a")
        assert a.uid != b.uid
