"""Hypervisor admission and board co-simulation tests."""

import numpy as np
import pytest

from repro.config import default_config
from repro.errors import ConfigError, DRCViolation, ResourceError
from repro.fpga import CloudFPGA, Hypervisor, Tenant, ZYNQ_7020
from repro.fpga.resources import ResourceBudget
from repro.sensors import build_ro_sensor_netlist
from repro.striker import StrikerBank, build_striker_cell_netlist
from repro.fpga.netlist import Netlist


class ConstantLoad(Tenant):
    """Test tenant drawing a fixed current."""

    def __init__(self, name: str, amps: float):
        super().__init__(name, ResourceBudget(luts=10), None, 5, 5)
        self.amps = amps
        self.seen = []

    def current_draw(self, tick):
        return self.amps

    def on_voltage(self, tick, volts):
        self.seen.append(volts)


class TestHypervisor:
    def test_ro_tenant_rejected_at_admission(self):
        hv = Hypervisor(ZYNQ_7020)
        bad = Tenant("attacker", ResourceBudget(luts=5),
                     build_ro_sensor_netlist(), 5, 5)
        with pytest.raises(DRCViolation):
            hv.admit(bad)

    def test_striker_tenant_admitted(self):
        hv = Hypervisor(ZYNQ_7020)
        bank = StrikerBank(1000, default_config())
        report = hv.admit(bank)
        assert report.passed

    def test_resource_hog_rejected(self):
        hv = Hypervisor(ZYNQ_7020)
        hog = Tenant("hog", ResourceBudget(dsp_slices=500), None, 5, 5)
        with pytest.raises(ResourceError):
            hv.admit(hog)

    def test_duplicate_name_rejected(self):
        hv = Hypervisor(ZYNQ_7020)
        hv.admit(ConstantLoad("a", 0.0))
        with pytest.raises(ConfigError):
            hv.admit(ConstantLoad("a", 0.0))

    def test_failed_placement_releases_resources(self):
        hv = Hypervisor(ZYNQ_7020)
        big = Tenant("big", ResourceBudget(luts=10), None, 100, 100)
        hv.admit(big)
        small = Tenant("small", ResourceBudget(luts=10), None, 10, 10)
        with pytest.raises(Exception):
            hv.admit(small)  # no floorplan room left
        # Resources were rolled back, so a later tiny region succeeds
        # once we rebuild the floorplan.
        assert hv.utilization.total().luts == 10

    def test_unified_bitstream_contains_all_tenants(self):
        hv = Hypervisor(ZYNQ_7020)
        nl = Netlist("t0")
        build_striker_cell_netlist(0, netlist=nl)
        hv.admit(Tenant("t0", ResourceBudget(luts=2), nl, 5, 5))
        merged = hv.unified_bitstream()
        assert merged.cell_count() == nl.cell_count()


class TestCloudFPGA:
    def test_cosimulation_voltage_reflects_load(self):
        board = CloudFPGA.pynq_z1(seed=5)
        quiet = ConstantLoad("quiet", 0.0)
        loud = ConstantLoad("loud", 0.4)
        board.admit(quiet)
        volts_quiet = board.cosimulate(200).mean()
        board.admit(loud)
        volts_loud = board.cosimulate(200).mean()
        assert volts_loud < volts_quiet - 0.03

    def test_tenants_observe_voltage(self):
        board = CloudFPGA.pynq_z1(seed=5)
        t = ConstantLoad("watcher", 0.0)
        board.admit(t)
        board.cosimulate(50)
        assert len(t.seen) == 50

    def test_trace_hook_called(self):
        board = CloudFPGA.pynq_z1(seed=5)
        board.admit(ConstantLoad("t", 0.1))
        rows = []
        board.add_trace_hook(lambda tick, load, v: rows.append((tick, load, v)))
        board.cosimulate(10)
        assert len(rows) == 10
        assert rows[0][1] == pytest.approx(0.1)

    def test_reset_restores_clock_and_pdn(self):
        board = CloudFPGA.pynq_z1(seed=5)
        board.cosimulate(100)
        board.reset()
        assert board.clock.tick == 0

    def test_vectorized_activity_path(self):
        board = CloudFPGA.pynq_z1(seed=5)
        volts = board.simulate_activity(np.full(100, 0.2))
        assert volts.shape == (100,)
        assert board.clock.tick == 100

    def test_seed_reproducibility(self):
        a = CloudFPGA.pynq_z1(seed=9)
        b = CloudFPGA.pynq_z1(seed=9)
        a.admit(ConstantLoad("t", 0.1))
        b.admit(ConstantLoad("t", 0.1))
        np.testing.assert_allclose(a.cosimulate(64), b.cosimulate(64))
