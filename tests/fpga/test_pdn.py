"""PDN model tests: stability, droop physics, streaming/vectorized parity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PDNConfig, default_config
from repro.errors import SimulationError
from repro.fpga.pdn import PowerDistributionNetwork


@pytest.fixture()
def pdn(config):
    return PowerDistributionNetwork(config.pdn, dt=config.clock.sim_dt, rng=None)


class TestBasics:
    def test_idle_voltage_below_nominal(self, pdn, config):
        v = pdn.settle(0.0)
        assert 0.95 < v < config.pdn.v_nominal

    def test_settles_to_closed_form(self, pdn):
        v = pdn.settle(0.1)
        assert v == pytest.approx(pdn.steady_state_voltage(0.1), abs=1e-4)

    def test_more_current_more_droop(self, pdn):
        v_low = pdn.steady_state_voltage(0.05)
        v_high = pdn.steady_state_voltage(0.50)
        assert v_high < v_low

    def test_negative_current_rejected(self, pdn):
        with pytest.raises(SimulationError):
            pdn.step(-0.1)

    def test_under_resolved_resonance_rejected(self, config):
        cfg = PDNConfig(resonance_hz=40e6)
        with pytest.raises(SimulationError):
            PowerDistributionNetwork(cfg, dt=config.clock.sim_dt)


class TestTransients:
    def test_single_strike_dips_and_recovers(self, pdn):
        pdn.settle(0.0)
        v_idle = pdn.voltage
        trace = np.zeros(600)
        trace[100:102] = 0.8
        volts = pdn.simulate(trace)
        assert volts.min() < v_idle - 0.05
        assert volts[-1] == pytest.approx(v_idle, abs=2e-3)

    def test_prompt_response_within_strike(self, pdn):
        """One 2-tick strike must realize most of its prompt droop."""
        pdn.settle(0.0)
        v_idle = pdn.voltage
        trace = np.zeros(200)
        trace[50:52] = 0.5
        volts = pdn.simulate(trace)
        expected_prompt = pdn.config.r_prompt * 0.5
        droop = v_idle - volts.min()
        assert droop > 0.8 * expected_prompt

    def test_underdamped_step_overshoots(self, config):
        """The resonant term must ring (overshoot its settled value)."""
        pdn = PowerDistributionNetwork(config.pdn, dt=config.clock.sim_dt,
                                       rng=None)
        pdn.settle(0.0)
        step = np.full(4000, 0.5)
        volts = pdn.simulate(step)
        settled = pdn.steady_state_voltage(0.5)
        assert volts.min() < settled - 1e-3  # overshoot below final value

    def test_streaming_matches_vectorized(self, config, rng):
        trace = rng.uniform(0.0, 0.4, size=300)
        a = PowerDistributionNetwork(config.pdn, dt=config.clock.sim_dt,
                                     rng=None)
        b = PowerDistributionNetwork(config.pdn, dt=config.clock.sim_dt,
                                     rng=None)
        stepped = np.array([a.step(i) for i in trace])
        vectorized = b.simulate(trace)
        np.testing.assert_allclose(stepped, vectorized, atol=1e-12)

    def test_noise_has_configured_scale(self, config):
        pdn = PowerDistributionNetwork(config.pdn, dt=config.clock.sim_dt,
                                       rng=np.random.default_rng(0))
        pdn.settle(0.1)
        volts = pdn.simulate(np.full(4000, 0.1))
        assert volts.std() == pytest.approx(config.pdn.noise_sigma_v,
                                            rel=0.25)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(current=st.floats(min_value=0.0, max_value=1.5))
    def test_voltage_monotone_in_load(self, current):
        cfg = default_config()
        pdn = PowerDistributionNetwork(cfg.pdn, dt=cfg.clock.sim_dt, rng=None)
        lighter = pdn.steady_state_voltage(current)
        heavier = pdn.steady_state_voltage(current + 0.1)
        assert heavier < lighter

    @settings(max_examples=20, deadline=None)
    @given(
        currents=st.lists(st.floats(min_value=0.0, max_value=1.0),
                          min_size=10, max_size=200)
    )
    def test_simulation_stays_bounded(self, currents):
        cfg = default_config()
        pdn = PowerDistributionNetwork(cfg.pdn, dt=cfg.clock.sim_dt, rng=None)
        volts = pdn.simulate(np.asarray(currents))
        assert np.all(volts > 0.5)
        assert np.all(volts <= cfg.pdn.v_nominal + 0.05)

    def test_linearity_of_droop(self, config):
        """Double the current step => double the droop (linear model)."""
        def peak_droop(amps):
            pdn = PowerDistributionNetwork(config.pdn, dt=config.clock.sim_dt,
                                           rng=None)
            idle = pdn.settle(0.0)
            trace = np.zeros(400)
            trace[100:110] = amps
            return idle - pdn.simulate(trace).min()

        assert peak_droop(0.4) == pytest.approx(2 * peak_droop(0.2), rel=0.02)


class TestBatch:
    """simulate_batch: the 2-D pure map of simulate (the batched pricing
    path leans on both promises — row equality and state purity)."""

    def traces(self):
        t = np.zeros((3, 400))
        t[0, 100:110] = 0.4          # one strike burst
        t[1, :] = 0.1                # steady load
        t[2, 50:350] = 0.25          # long plateau
        return t

    def test_rows_bit_equal_to_simulate_from_same_state(self, pdn):
        pdn.settle(0.15)
        snap = pdn.state
        batch = pdn.simulate_batch(self.traces())
        for row, trace in zip(batch, self.traces()):
            pdn.state = snap
            np.testing.assert_array_equal(row, pdn.simulate(trace))

    def test_batch_leaves_state_untouched(self, pdn):
        pdn.settle(0.15)
        snap = pdn.state
        first = pdn.simulate_batch(self.traces())
        assert pdn.state == snap
        np.testing.assert_array_equal(first, pdn.simulate_batch(self.traces()))

    def test_state_snapshot_round_trip(self, pdn):
        """The state property contract the batch path builds on:
        assigning a captured snapshot restores the network bit-exactly."""
        pdn.settle(0.1)
        snap = pdn.state
        after_burst = pdn.simulate(np.full(200, 0.5))
        assert pdn.state != snap
        pdn.state = snap
        np.testing.assert_array_equal(pdn.simulate(np.full(200, 0.5)),
                                      after_burst)

    def test_loop_fallback_matches_per_row_reference(self, pdn, monkeypatch):
        """Without scipy the batch runs the scalar loop per row — still
        pure, still row-for-row equal to simulate."""
        import repro.fpga.pdn as pdn_mod

        monkeypatch.setattr(pdn_mod, "_HAVE_SCIPY", False)
        pdn.settle(0.15)
        snap = pdn.state
        batch = pdn.simulate_batch(self.traces())
        assert pdn.state == snap
        for row, trace in zip(batch, self.traces()):
            pdn.state = snap
            np.testing.assert_array_equal(row, pdn.simulate(trace))

    def test_noise_is_drawn_row_major_on_top_of_the_clean_rows(self, config):
        """On a noisy network the batch adds one rng.normal matrix over
        the deterministic rows — reconstructable stream, untouched state."""
        clean = PowerDistributionNetwork(config.pdn, dt=config.clock.sim_dt,
                                         rng=None)
        noisy = PowerDistributionNetwork(config.pdn, dt=config.clock.sim_dt,
                                         rng=np.random.default_rng(42))
        snap = noisy.state
        got = noisy.simulate_batch(self.traces())
        assert noisy.state == snap
        want = clean.simulate_batch(self.traces())
        rng = np.random.default_rng(42)
        rng.normal(0.0, config.pdn.noise_sigma_v)  # construction draw
        want = want + rng.normal(0.0, config.pdn.noise_sigma_v,
                                 size=want.shape)
        np.testing.assert_array_equal(got, want)

    def test_one_dimensional_input_rejected(self, pdn):
        with pytest.raises(SimulationError, match="2-D"):
            pdn.simulate_batch(np.zeros(100))

    def test_negative_current_rejected(self, pdn):
        bad = self.traces()
        bad[1, 7] = -0.01
        with pytest.raises(SimulationError):
            pdn.simulate_batch(bad)

    def test_empty_batch_is_empty(self, pdn):
        assert pdn.simulate_batch(np.empty((0, 10))).shape == (0, 10)
        assert pdn.simulate_batch(np.empty((4, 0))).shape == (4, 0)
