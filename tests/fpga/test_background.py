"""Background-tenant activity model tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fpga import BackgroundActivity, BackgroundTenant, CloudFPGA


class TestBackgroundActivity:
    def test_trace_bounds(self):
        act = BackgroundActivity()
        trace = act.trace(5000, np.random.default_rng(0))
        assert trace.shape == (5000,)
        assert trace.min() >= 0
        assert trace.max() <= act.burst_current * (1 + act.jitter) + 1e-12

    def test_bursts_occur(self):
        act = BackgroundActivity()
        trace = act.trace(20_000, np.random.default_rng(1))
        threshold = (act.base_current + act.burst_current) / 2
        burst_fraction = (trace > threshold).mean()
        assert 0.01 < burst_fraction < 0.9

    def test_mean_current_estimate(self):
        act = BackgroundActivity()
        trace = act.trace(200_000, np.random.default_rng(2))
        assert trace.mean() == pytest.approx(act.mean_current(), rel=0.25)

    def test_deterministic_by_rng(self):
        act = BackgroundActivity()
        a = act.trace(1000, np.random.default_rng(3))
        b = act.trace(1000, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ConfigError):
            BackgroundActivity(burst_start_prob=0.0)
        with pytest.raises(ConfigError):
            BackgroundActivity(jitter=1.0)
        with pytest.raises(ConfigError):
            BackgroundActivity(base_current=-1.0)

    def test_zero_length_trace(self):
        act = BackgroundActivity()
        assert act.trace(0, np.random.default_rng(0)).shape == (0,)


class TestBackgroundTenant:
    def test_admitted_and_draws(self):
        board = CloudFPGA.pynq_z1(seed=4)
        tenant = BackgroundTenant(rng=np.random.default_rng(5))
        board.admit(tenant)
        volts = board.cosimulate(2000)
        assert volts.min() < volts.max()  # activity modulates the rail

    def test_reset_clears_burst_state(self):
        tenant = BackgroundTenant(rng=np.random.default_rng(6))
        for tick in range(5000):
            tenant.current_draw(tick)
        tenant.reset()
        assert not tenant._bursting
