"""Floorplan placement and clock management tile tests."""

import pytest

from repro.errors import ConfigError, PlacementError
from repro.fpga import ClockManagementTile, Floorplan, Region


class TestRegion:
    def test_geometry(self):
        r = Region("a", 0, 0, 10, 20)
        assert r.width == 10 and r.height == 20 and r.area == 200
        assert r.center == (5.0, 10.0)

    def test_degenerate_rejected(self):
        with pytest.raises(PlacementError):
            Region("bad", 5, 5, 5, 10)

    def test_overlap_detection(self):
        a = Region("a", 0, 0, 10, 10)
        assert a.overlaps(Region("b", 5, 5, 15, 15))
        assert not a.overlaps(Region("c", 10, 0, 20, 10))  # edge-adjacent

    def test_distance(self):
        a = Region("a", 0, 0, 2, 2)
        b = Region("b", 3, 0, 5, 2)
        assert a.distance_to(b) == pytest.approx(3.0)


class TestFloorplan:
    def test_overlapping_placement_rejected(self):
        fp = Floorplan(50, 50)
        fp.place(Region("a", 0, 0, 20, 20))
        with pytest.raises(PlacementError):
            fp.place(Region("b", 10, 10, 30, 30))

    def test_out_of_fabric_rejected(self):
        fp = Floorplan(50, 50)
        with pytest.raises(PlacementError):
            fp.place(Region("a", 40, 40, 60, 60))

    def test_place_apart_maximizes_distance(self):
        fp = Floorplan(100, 100)
        fp.place(Region("victim", 0, 0, 20, 20))
        attacker = fp.place_apart("attacker", 20, 20, far_from="victim")
        # The attacker should land in the opposite corner's half.
        assert attacker.center[0] > 50 or attacker.center[1] > 50
        assert fp.separation("victim", "attacker") > 50

    def test_no_room_raises(self):
        fp = Floorplan(20, 20)
        fp.place(Region("big", 0, 0, 20, 20))
        with pytest.raises(PlacementError):
            fp.place_apart("late", 5, 5)

    def test_duplicate_name_rejected(self):
        fp = Floorplan()
        fp.place(Region("a", 0, 0, 5, 5))
        with pytest.raises(PlacementError):
            fp.place(Region("a", 10, 10, 15, 15))


class TestClockManagementTile:
    def test_default_vco_in_range(self):
        cmt = ClockManagementTile()
        assert ClockManagementTile.VCO_MIN_HZ <= cmt.vco_hz \
            <= ClockManagementTile.VCO_MAX_HZ

    def test_vco_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            ClockManagementTile(reference_hz=125e6, multiplier=20)

    def test_derive_paper_clocks(self):
        cmt = ClockManagementTile()
        launch = cmt.derive("tdc_launch", 200e6)
        sample = cmt.derive("tdc_sample", 200e6, phase_s=4.6e-9)
        assert launch.period == pytest.approx(5e-9)
        assert sample.phase_s == pytest.approx(4.6e-9,
                                               abs=cmt.phase_resolution_s)

    def test_non_integer_divider_rejected(self):
        cmt = ClockManagementTile()
        with pytest.raises(ConfigError):
            cmt.derive("odd", 333e6)

    def test_phase_quantization(self):
        cmt = ClockManagementTile()
        step = cmt.phase_resolution_s
        quantized = cmt.quantize_phase(2.3 * step)
        assert quantized == pytest.approx(2 * step)

    def test_rephase(self):
        cmt = ClockManagementTile()
        cmt.derive("clk", 100e6)
        updated = cmt.rephase("clk", 3e-9)
        assert updated.phase_s > 0
        assert cmt.output("clk").phase_s == updated.phase_s

    def test_duplicate_output_rejected(self):
        cmt = ClockManagementTile()
        cmt.derive("clk", 100e6)
        with pytest.raises(ConfigError):
            cmt.derive("clk", 100e6)

    def test_edges_in_duration(self):
        cmt = ClockManagementTile()
        clk = cmt.derive("clk", 100e6)
        assert clk.edges_in(95e-9) == 10  # edges at 0,10,...,90 ns
