"""Design rule checker tests — the paper's central structural claim."""

import pytest

from repro.errors import DRCViolation
from repro.fpga import DesignRuleChecker, LDCE, LUT1, Netlist
from repro.fpga.drc import Severity
from repro.sensors import build_ro_sensor_netlist, build_tdc_netlist
from repro.striker import build_ro_cell_netlist, build_striker_cell_netlist
from repro.config import default_config


@pytest.fixture()
def drc():
    return DesignRuleChecker()


class TestCombLoopRule:
    def test_ro_cell_fails(self, drc):
        report = drc.check(build_ro_cell_netlist())
        assert not report.passed
        result = report.result_for(DesignRuleChecker.RULE_COMB_LOOP)
        assert result is not None and not result.passed

    def test_striker_cell_passes(self, drc):
        report = drc.check(build_striker_cell_netlist())
        assert report.passed

    def test_striker_cell_flagged_by_strict_scan(self):
        strict = DesignRuleChecker(strict_latch_scan=True)
        report = strict.check(build_striker_cell_netlist())
        assert not report.passed
        result = report.result_for(DesignRuleChecker.RULE_LATCH_LOOP)
        assert result.severity is Severity.ERROR

    def test_tdc_netlist_passes(self, drc):
        report = drc.check(build_tdc_netlist(default_config().tdc))
        assert report.passed

    def test_ro_sensor_fails(self, drc):
        assert not drc.check(build_ro_sensor_netlist()).passed

    def test_raise_on_error(self, drc):
        report = drc.check(build_ro_cell_netlist())
        with pytest.raises(DRCViolation) as err:
            report.raise_on_error()
        assert err.value.rule == DesignRuleChecker.RULE_COMB_LOOP


class TestWarningsAndInfo:
    def test_latch_usage_reported_as_info(self, drc):
        report = drc.check(build_striker_cell_netlist())
        result = report.result_for(DesignRuleChecker.RULE_LATCH_INFER)
        assert result.severity is Severity.INFO
        assert "latch" in result.message

    def test_undriven_net_warns_but_passes(self, drc):
        nl = Netlist("floating")
        a = nl.add_cell(LUT1("a"))
        net = nl.add_net("dangling")
        nl.sink(net, a, "I0")
        report = drc.check(nl)
        assert report.passed  # warnings do not fail the design
        assert report.warnings()

    def test_floating_latch_gate_warns(self, drc):
        nl = Netlist("badlatch")
        inv = nl.add_cell(LUT1("inv", init=0b01))
        latch = nl.add_cell(LDCE("latch"))
        nl.connect(inv, "O", latch, "D")
        report = drc.check(nl)
        result = report.result_for(DesignRuleChecker.RULE_FLOATING_GATE)
        assert not result.passed

    def test_summary_mentions_status(self, drc):
        report = drc.check(build_ro_cell_netlist())
        assert "FAIL" in report.summary()
        ok = drc.check(build_striker_cell_netlist())
        assert "PASS" in ok.summary()


class TestScaling:
    def test_large_striker_bank_checks_quickly(self, drc):
        nl = Netlist("bank")
        for k in range(512):
            build_striker_cell_netlist(k, netlist=nl)
        assert drc.check(nl).passed

    def test_one_ro_hidden_in_large_bank_is_found(self, drc):
        nl = Netlist("bank_with_ro")
        for k in range(128):
            build_striker_cell_netlist(k, netlist=nl)
        build_ro_cell_netlist(999, netlist=nl)
        assert not drc.check(nl).passed
