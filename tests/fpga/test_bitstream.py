"""Bitstream packaging and PR loader tests."""

import pytest

from repro.errors import ConfigError, PlacementError, ResourceError
from repro.fpga import Floorplan, Region, ZYNQ_7020
from repro.fpga.bitstream import (
    FRAME_BYTES,
    Bitstream,
    BitstreamLoader,
    ConfigurationFrame,
)
from repro.fpga.netlist import Netlist
from repro.striker import build_striker_cell_netlist


@pytest.fixture()
def striker_netlist():
    nl = Netlist("striker_pr")
    for k in range(8):
        build_striker_cell_netlist(k, netlist=nl)
    return nl


@pytest.fixture()
def region():
    return Region("attacker_pr", 10, 10, 40, 40)


class TestBitstream:
    def test_synthesis_metadata(self, striker_netlist, region):
        stream = Bitstream.synthesize(striker_netlist, region, ZYNQ_7020)
        assert stream.device_name == "xc7z020"
        assert stream.lut_count == striker_netlist.lut_count()
        assert stream.latch_count == 16
        assert stream.verify()

    def test_frame_count_scales_with_region(self, striker_netlist):
        small = Bitstream.synthesize(striker_netlist,
                                     Region("s", 0, 0, 10, 10), ZYNQ_7020)
        large = Bitstream.synthesize(striker_netlist,
                                     Region("l", 0, 0, 40, 40), ZYNQ_7020)
        assert len(large.frames) > len(small.frames)

    def test_deterministic(self, striker_netlist, region):
        a = Bitstream.synthesize(striker_netlist, region, ZYNQ_7020)
        b = Bitstream.synthesize(striker_netlist, region, ZYNQ_7020)
        assert a.crc32 == b.crc32
        assert a.frames[0].payload == b.frames[0].payload

    def test_different_designs_differ(self, striker_netlist, region):
        other = Netlist("other")
        build_striker_cell_netlist(0, netlist=other)
        a = Bitstream.synthesize(striker_netlist, region, ZYNQ_7020)
        b = Bitstream.synthesize(other, region, ZYNQ_7020)
        assert a.frames[0].payload != b.frames[0].payload

    def test_tampering_breaks_crc(self, striker_netlist, region):
        stream = Bitstream.synthesize(striker_netlist, region, ZYNQ_7020)
        assert not stream.tampered_copy().verify()

    def test_frame_payload_size_enforced(self):
        with pytest.raises(ConfigError):
            ConfigurationFrame(0, b"\x00" * (FRAME_BYTES - 1))


class TestBitstreamLoader:
    def _loader(self):
        return BitstreamLoader(ZYNQ_7020, Floorplan(100, 100))

    def test_good_stream_programs(self, striker_netlist, region):
        loader = self._loader()
        stream = Bitstream.synthesize(striker_netlist, region, ZYNQ_7020)
        loader.program(stream, expected_region=region)
        assert loader.programmed_designs == ["striker_pr"]

    def test_wrong_device_rejected(self, striker_netlist, region):
        loader = self._loader()
        stream = Bitstream.synthesize(striker_netlist, region, ZYNQ_7020)
        stream.device_name = "xc7z045"
        with pytest.raises(ResourceError):
            loader.validate(stream)

    def test_out_of_fabric_region_rejected(self, striker_netlist):
        loader = self._loader()
        bad = Region("huge", 0, 0, 150, 150)
        stream = Bitstream.synthesize(striker_netlist, bad, ZYNQ_7020)
        with pytest.raises(PlacementError):
            loader.validate(stream)

    def test_region_mismatch_rejected(self, striker_netlist, region):
        loader = self._loader()
        stream = Bitstream.synthesize(striker_netlist, region, ZYNQ_7020)
        other = Region("elsewhere", 50, 50, 80, 80)
        with pytest.raises(PlacementError):
            loader.validate(stream, expected_region=other)

    def test_tampered_stream_rejected(self, striker_netlist, region):
        loader = self._loader()
        stream = Bitstream.synthesize(striker_netlist, region, ZYNQ_7020)
        with pytest.raises(ConfigError):
            loader.validate(stream.tampered_copy())

    def test_rogue_frame_address_rejected(self, striker_netlist, region):
        loader = self._loader()
        stream = Bitstream.synthesize(striker_netlist, region, ZYNQ_7020)
        rogue = ConfigurationFrame(0, stream.frames[0].payload)
        stream.frames[0] = rogue
        stream.crc32 = stream.compute_crc()  # attacker fixes the CRC...
        with pytest.raises(PlacementError):
            loader.validate(stream)  # ...but the address check still fires
