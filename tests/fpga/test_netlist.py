"""Netlist construction and timing-graph tests."""

import pytest

from repro.errors import ConfigError
from repro.fpga import FDRE, LDCE, LUT1, Netlist


def ring_oscillator(stages: int = 3) -> Netlist:
    nl = Netlist("ro")
    invs = [nl.add_cell(LUT1(f"inv{k}", init=0b01)) for k in range(stages)]
    for k, inv in enumerate(invs):
        nl.connect(inv, "O", invs[(k + 1) % stages], "I0")
    return nl


def latch_loop() -> Netlist:
    nl = Netlist("latchloop")
    inv = nl.add_cell(LUT1("inv", init=0b01))
    latch = nl.add_cell(LDCE("latch"))
    nl.connect(inv, "O", latch, "D")
    nl.connect(latch, "Q", inv, "I0")
    return nl


class TestConstruction:
    def test_duplicate_cell_name_rejected(self):
        nl = Netlist("n")
        nl.add_cell(LUT1("a"))
        with pytest.raises(ConfigError):
            nl.add_cell(LUT1("a"))

    def test_duplicate_net_name_rejected(self):
        nl = Netlist("n")
        nl.add_net("x")
        with pytest.raises(ConfigError):
            nl.add_net("x")

    def test_two_drivers_rejected(self):
        nl = Netlist("n")
        a, b = nl.add_cell(LUT1("a")), nl.add_cell(LUT1("b"))
        net = nl.add_net("w")
        nl.drive(net, a, "O")
        with pytest.raises(ConfigError):
            nl.drive(net, b, "O")

    def test_driving_from_input_port_rejected(self):
        nl = Netlist("n")
        a = nl.add_cell(LUT1("a"))
        net = nl.add_net("w")
        with pytest.raises(ConfigError):
            nl.drive(net, a, "I0")

    def test_double_sink_binding_rejected(self):
        nl = Netlist("n")
        a, b = nl.add_cell(LUT1("a")), nl.add_cell(LUT1("b"))
        nl.connect(a, "O", b, "I0")
        c = nl.add_cell(LUT1("c"))
        with pytest.raises(ConfigError):
            nl.connect(c, "O", b, "I0")

    def test_connect_reuses_driver_net(self):
        nl = Netlist("n")
        a = nl.add_cell(LUT1("a"))
        b, c = nl.add_cell(LUT1("b")), nl.add_cell(LUT1("c"))
        n1 = nl.connect(a, "O", b, "I0")
        n2 = nl.connect(a, "O", c, "I0")
        assert n1 is n2
        assert len(n1.sinks) == 2

    def test_lookup_missing_cell_or_net(self):
        nl = Netlist("n")
        with pytest.raises(ConfigError):
            nl.cell("ghost")
        with pytest.raises(ConfigError):
            nl.get_net("ghost")


class TestTimingGraph:
    def test_ro_has_combinational_cycle(self):
        cycles = ring_oscillator().combinational_cycles()
        assert cycles, "a ring oscillator must close a combinational loop"

    def test_latch_loop_acyclic_without_transparency(self):
        assert latch_loop().combinational_cycles() == []

    def test_latch_loop_cycle_with_transparency(self):
        cycles = latch_loop().combinational_cycles(transparent_latches=True)
        assert cycles

    def test_ff_breaks_the_loop(self):
        nl = Netlist("ffloop")
        inv = nl.add_cell(LUT1("inv", init=0b01))
        ff = nl.add_cell(FDRE("ff"))
        nl.connect(inv, "O", ff, "D")
        nl.connect(ff, "Q", inv, "I0")
        assert nl.combinational_cycles() == []
        assert nl.combinational_cycles(transparent_latches=True) == []

    def test_cycle_nodes_are_labelled(self):
        graph = ring_oscillator().timing_graph()
        labels = {graph.nodes[n]["label"] for n in graph.nodes}
        assert "inv0.O" in labels


class TestAccountingAndMerge:
    def test_resource_counts(self):
        nl = latch_loop()
        assert nl.lut_count() == 1
        assert nl.latch_count() == 1
        assert nl.ff_count() == 0

    def test_merge_is_nondestructive(self):
        a = ring_oscillator()
        b = latch_loop()
        merged = Netlist("top")
        merged.merge(a, prefix="t0/")
        merged.merge(b, prefix="t1/")
        assert merged.cell_count() == a.cell_count() + b.cell_count()
        # Source netlists keep their own names.
        assert a.cell("inv0").name == "inv0"
        assert merged.cell("t0/inv0") is a.cell("inv0")

    def test_merge_collision_rejected(self):
        merged = Netlist("top")
        merged.merge(ring_oscillator(), prefix="x/")
        with pytest.raises(ConfigError):
            merged.merge(ring_oscillator(3), prefix="x/")

    def test_merged_graph_keeps_tenant_cycles(self):
        merged = Netlist("top")
        merged.merge(ring_oscillator(), prefix="a/")
        merged.merge(latch_loop(), prefix="b/")
        assert len(merged.combinational_cycles()) >= 1
