"""Thermal model tests (the 'don't hold Start high' constraint)."""

import numpy as np
import pytest

from repro.dsp import FaultCharacterization
from repro.errors import ConfigError, SimulationError
from repro.fpga.thermal import ThermalConfig, ThermalModel


class TestThermalModel:
    def test_idles_at_idle_temperature(self):
        model = ThermalModel()
        expected = model.steady_state(model.config.idle_power_w)
        assert model.temperature_c == pytest.approx(expected)

    def test_step_approaches_steady_state(self):
        model = ThermalModel()
        target = model.steady_state(0.8)
        for _ in range(200):
            model.step(0.8, dt=1e-4)
        assert model.temperature_c == pytest.approx(target, abs=0.5)

    def test_simulate_matches_steps(self):
        a, b = ThermalModel(), ThermalModel()
        powers = np.linspace(0.2, 0.9, 50)
        for p in powers:
            a.step(float(p), dt=1e-4)
        b.simulate(powers, dt=1e-4)
        assert a.temperature_c == pytest.approx(b.temperature_c, rel=1e-9)

    def test_crash_on_over_temperature(self):
        model = ThermalModel()
        power = model.max_sustained_power_w() * 1.5
        with pytest.raises(SimulationError):
            for _ in range(10_000):
                model.step(power, dt=1e-4)

    def test_crash_can_be_disabled_for_studies(self):
        model = ThermalModel(crash_on_limit=False)
        power = model.max_sustained_power_w() * 1.5
        for _ in range(10_000):
            model.step(power, dt=1e-4)
        assert model.temperature_c > model.config.crash_c

    def test_delay_factor_grows_with_temperature(self):
        model = ThermalModel(crash_on_limit=False)
        cold = model.delay_factor()
        for _ in range(5000):
            model.step(0.9, dt=1e-4)
        assert model.delay_factor() > cold

    def test_headroom(self):
        model = ThermalModel()
        assert model.headroom_c() > 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ThermalConfig(crash_c=20.0).validate()
        with pytest.raises(ConfigError):
            ThermalConfig(tau_s=0.0).validate()

    def test_negative_power_rejected(self):
        with pytest.raises(SimulationError):
            ThermalModel().step(-1.0, dt=1e-4)


class TestSustainedStrikeStudy:
    @pytest.fixture(scope="class")
    def harness(self):
        return FaultCharacterization(seed=0)

    def test_pulsed_attack_stays_cold(self, harness):
        result = harness.sustained_strike_study(24_000, duty=0.01)
        assert not result["crashed"]
        assert result["peak_temp_c"] < 60

    def test_sustained_large_bank_crashes(self, harness):
        """The paper's warning: holding Start with a big bank kills it."""
        result = harness.sustained_strike_study(48_000, duty=1.0)
        assert result["crashed"]

    def test_sustained_paper_bank_hot_but_alive(self, harness):
        result = harness.sustained_strike_study(24_000, duty=1.0)
        assert not result["crashed"]
        assert result["peak_temp_c"] > 75

    def test_duty_validation(self, harness):
        with pytest.raises(SimulationError):
            harness.sustained_strike_study(1000, duty=0.0)
