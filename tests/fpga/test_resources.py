"""Resource inventory and utilization accounting tests."""

import pytest

from repro.errors import ResourceError
from repro.fpga import ResourceBudget, Utilization, ZYNQ_7020
from repro.fpga.resources import DeviceResources


class TestInventory:
    def test_zynq_7020_datasheet_values(self):
        assert ZYNQ_7020.luts == 53_200
        assert ZYNQ_7020.slices == 13_300
        assert ZYNQ_7020.dsp_slices == 220
        ZYNQ_7020.validate()

    def test_invalid_device_rejected(self):
        bad = DeviceResources("x", luts=0, flip_flops=1, slices=1,
                              dsp_slices=1, bram_36k=1)
        with pytest.raises(ResourceError):
            bad.validate()


class TestBudget:
    def test_slices_lut_limited(self):
        budget = ResourceBudget(luts=400)
        assert budget.slices_needed(ZYNQ_7020) == 100

    def test_slices_register_limited(self):
        budget = ResourceBudget(luts=4, latches=800)
        assert budget.slices_needed(ZYNQ_7020) == 100

    def test_addition(self):
        total = ResourceBudget(luts=1, dsp_slices=2) + ResourceBudget(
            luts=3, bram_36k=1
        )
        assert total.luts == 4 and total.dsp_slices == 2 and total.bram_36k == 1


class TestUtilization:
    def test_paper_striker_slice_fraction(self):
        """An 8,000-cell bank costs ~15% of slices (paper: 15.03%)."""
        util = Utilization(ZYNQ_7020)
        util.claim("striker", ResourceBudget(luts=8001, latches=16000))
        fraction = util.slice_fraction("striker")
        assert 0.145 <= fraction <= 0.156

    def test_overflow_rejected(self):
        util = Utilization(ZYNQ_7020)
        with pytest.raises(ResourceError):
            util.claim("hog", ResourceBudget(dsp_slices=221))

    def test_cumulative_overflow_rejected(self):
        util = Utilization(ZYNQ_7020)
        util.claim("a", ResourceBudget(dsp_slices=150))
        with pytest.raises(ResourceError):
            util.claim("b", ResourceBudget(dsp_slices=100))

    def test_duplicate_tenant_rejected(self):
        util = Utilization(ZYNQ_7020)
        util.claim("a", ResourceBudget(luts=1))
        with pytest.raises(ResourceError):
            util.claim("a", ResourceBudget(luts=1))

    def test_release_frees_capacity(self):
        util = Utilization(ZYNQ_7020)
        util.claim("a", ResourceBudget(dsp_slices=220))
        util.release("a")
        util.claim("b", ResourceBudget(dsp_slices=220))

    def test_unknown_tenant_lookup(self):
        util = Utilization(ZYNQ_7020)
        with pytest.raises(ResourceError):
            util.tenant_budget("ghost")

    def test_report_lists_tenants(self):
        util = Utilization(ZYNQ_7020)
        util.claim("victim", ResourceBudget(luts=100, dsp_slices=32))
        assert "victim" in util.report()
