"""Property test: vectorized PDN ``simulate()`` == repeated ``step()``.

``simulate`` evaluates the semi-implicit-Euler recurrence with one
``scipy.signal.lfilter`` pass; ``step`` is the scalar reference.  Over
random traces — including state carried across segments, a ``reset()``
and a ``settle()`` in between — the two must agree to float64 noise.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_config
from repro.fpga.pdn import PowerDistributionNetwork

_CFG = default_config()


def _pair():
    """Two noise-free networks with identical state."""
    return (PowerDistributionNetwork(_CFG.pdn, _CFG.clock.sim_dt, rng=None),
            PowerDistributionNetwork(_CFG.pdn, _CFG.clock.sim_dt, rng=None))


_segment = st.lists(
    st.floats(min_value=0.0, max_value=2.0,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=256,
)


@settings(max_examples=25, deadline=None)
@given(segments=st.lists(_segment, min_size=1, max_size=4),
       disturb=st.sampled_from(["none", "reset", "settle"]))
def test_simulate_matches_repeated_step(segments, disturb):
    fast, ref = _pair()
    for index, segment in enumerate(segments):
        trace = np.asarray(segment, dtype=np.float64)
        got = fast.simulate(trace)
        want = np.array([ref.step(c) for c in trace])
        np.testing.assert_allclose(got, want, rtol=0.0, atol=1e-10)
        if trace.size:
            np.testing.assert_allclose(fast.voltage, ref.voltage,
                                       rtol=0.0, atol=1e-10)
        # Perturb the carried state between segments: the next
        # simulate() must continue from wherever step() would be.
        if index == 0:
            if disturb == "reset":
                fast.reset()
                ref.reset()
            elif disturb == "settle":
                fast.settle(0.3, ticks=40)
                ref.settle(0.3, ticks=40)


@settings(max_examples=25, deadline=None)
@given(trace=_segment.filter(lambda s: len(s) >= 1))
def test_single_call_state_continuation(trace):
    """After one simulate() the internal state equals the step() walk's,
    so a subsequent constant-load tail stays in lockstep."""
    fast, ref = _pair()
    arr = np.asarray(trace, dtype=np.float64)
    fast.simulate(arr)
    for c in arr:
        ref.step(c)
    tail = np.full(16, 0.25)
    np.testing.assert_allclose(fast.simulate(tail),
                               np.array([ref.step(c) for c in tail]),
                               rtol=0.0, atol=1e-10)
