"""Analysis metrics, report tables, and experiment registry tests."""

import numpy as np
import pytest

from repro.analysis import (
    EXPERIMENTS,
    accuracy_drop_series,
    experiment,
    fixed_table,
    markdown_table,
    monotone_fraction,
    series_auc,
)
from repro.errors import ConfigError


class TestMetrics:
    def test_accuracy_drop_series(self):
        drops = accuracy_drop_series(0.98, [0.98, 0.90, 0.80])
        np.testing.assert_allclose(drops, [0.0, 0.08, 0.18])

    def test_drop_series_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            accuracy_drop_series(0.5, [1.5])

    def test_monotone_fraction_perfect(self):
        assert monotone_fraction([5, 4, 3, 2]) == 1.0
        assert monotone_fraction([1, 2, 3], decreasing=False) == 1.0

    def test_monotone_fraction_with_noise(self):
        assert monotone_fraction([5, 4, 4.1, 3]) == pytest.approx(2 / 3)

    def test_monotone_trivial_series(self):
        assert monotone_fraction([1.0]) == 1.0

    def test_series_auc_flat(self):
        assert series_auc([0, 1, 2], [0.9, 0.9, 0.9]) == pytest.approx(0.9)

    def test_series_auc_orders_attacks(self):
        x = [0, 1000, 2000]
        weak = series_auc(x, [0.98, 0.97, 0.96])
        strong = series_auc(x, [0.98, 0.90, 0.80])
        assert strong < weak

    def test_series_auc_validation(self):
        with pytest.raises(ConfigError):
            series_auc([1], [0.5])
        with pytest.raises(ConfigError):
            series_auc([2, 1], [0.5, 0.6])


class TestReports:
    def test_fixed_table_aligned(self):
        table = fixed_table(["layer", "acc"], [["conv2", 0.8934],
                                               ["fc1", 0.98]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_markdown_table_shape(self):
        table = markdown_table(["a", "b"], [[1, 2.5]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "2.5000" in lines[2]


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {f"E{k}" for k in range(1, 11)}
        assert set(EXPERIMENTS) == expected

    def test_every_experiment_names_a_bench(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        for exp in EXPERIMENTS.values():
            assert (root / exp.bench).exists(), \
                f"{exp.exp_id} bench missing: {exp.bench}"

    def test_lookup(self):
        assert experiment("E3").paper_artifact == "Fig 5(b)"
        with pytest.raises(ConfigError):
            experiment("E99")

    def test_design_doc_lists_every_experiment(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        text = (root / "DESIGN.md").read_text()
        for exp_id in EXPERIMENTS:
            assert exp_id in text, f"{exp_id} missing from DESIGN.md"
