"""ASCII plotting helper tests."""

import numpy as np
import pytest

from repro.analysis import bar_chart, line_chart, sparkline
from repro.errors import ConfigError


class TestSparkline:
    def test_width_respected(self):
        line = sparkline(np.sin(np.linspace(0, 10, 1000)), width=60)
        assert len(line) == 60

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2, 3], width=60)) == 3

    def test_extremes_use_extreme_glyphs(self):
        line = sparkline([0, 0, 0, 10], width=10)
        assert line[-1] == "@"
        assert line[0] == " "

    def test_constant_series(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sparkline([])


class TestLineChart:
    def test_shape(self):
        chart = line_chart(np.linspace(0, 1, 50), height=8, width=40,
                           title="t")
        lines = chart.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 1 + 8 + 1  # title + top + rows + bottom

    def test_min_max_labels(self):
        chart = line_chart([1.0, 3.0, 2.0], height=4)
        assert "3.000" in chart and "1.000" in chart

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            line_chart([])


class TestBarChart:
    def test_rows_and_scaling(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ConfigError):
            bar_chart(["a"], [1.0, 2.0])

    def test_zero_values(self):
        chart = bar_chart(["x"], [0.0])
        assert "x" in chart
