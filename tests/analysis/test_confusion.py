"""Per-class damage analysis tests."""

import numpy as np
import pytest

from repro.analysis.confusion import (
    attack_class_flow,
    confusion_matrix,
    per_class_recall,
)
from repro.errors import ConfigError


class TestConfusionMatrix:
    def test_perfect_predictions_diagonal(self):
        y = np.array([0, 1, 2, 2])
        m = confusion_matrix(y, y, n_classes=3)
        np.testing.assert_array_equal(np.diag(m), [1, 1, 2])
        assert m.sum() == 4

    def test_off_diagonal_counts(self):
        m = confusion_matrix(np.array([0, 0]), np.array([1, 1]), n_classes=2)
        assert m[0, 1] == 2 and m[0, 0] == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            confusion_matrix(np.array([0]), np.array([0, 1]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            confusion_matrix(np.array([0]), np.array([5]), n_classes=3)

    def test_recall(self):
        m = np.array([[3, 1], [0, 4]])
        np.testing.assert_allclose(per_class_recall(m), [0.75, 1.0])

    def test_recall_absent_class_nan(self):
        m = np.array([[0, 0], [1, 3]])
        recall = per_class_recall(m)
        assert np.isnan(recall[0]) and recall[1] == 0.75


class TestClassFlow:
    def test_flow_accounting(self):
        y = np.array([0, 0, 1, 1, 2])
        clean = np.array([0, 0, 1, 2, 2])   # 4 correct, 1 wrong
        attacked = np.array([0, 1, 1, 1, 0])  # breaks #1, heals #3, breaks #4
        flow = attack_class_flow(y, clean, attacked, n_classes=3)
        assert flow.broken == 2
        assert flow.healed == 1
        assert flow.unchanged_correct == 2
        assert flow.unchanged_wrong == 0
        assert flow.net_damage == 1

    def test_worst_class(self):
        y = np.array([0] * 10 + [1] * 10)
        clean = y.copy()
        attacked = y.copy()
        attacked[:6] = 1  # class 0 loses 60% recall
        flow = attack_class_flow(y, clean, attacked, n_classes=2)
        assert flow.worst_class == 0
        assert flow.worst_class_drop == pytest.approx(0.6)

    def test_top_transitions_ranked(self):
        y = np.zeros(10, dtype=int)
        clean = np.zeros(10, dtype=int)
        attacked = np.array([1, 1, 1, 2, 2, 0, 0, 0, 0, 0])
        flow = attack_class_flow(y, clean, attacked, n_classes=3)
        assert flow.top_transitions[0] == (0, 1, 3)
        assert flow.top_transitions[1] == (0, 2, 2)

    def test_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            attack_class_flow(np.array([0]), np.array([0]),
                              np.array([0, 1]))

    def test_on_real_attack_output(self, victim, lenet_engine):
        """Integration: class flow from a real strike campaign."""
        import numpy as np

        from repro.core import DeepStrike

        attack = DeepStrike(lenet_engine, rng=np.random.default_rng(7))
        images = victim.dataset.test_images[:150]
        labels = victim.dataset.test_labels[:150]
        plan = attack.plan_for_layer("conv2", 4500)
        clean = lenet_engine.predict_clean(images)
        attacked = lenet_engine.predict_under_attack(images, plan.struck)
        flow = attack_class_flow(labels, clean, attacked)
        assert flow.broken + flow.unchanged_correct \
            == int((clean == labels).sum())
        assert flow.net_damage >= 0
