"""Arms-race report helpers (tables + dose-response series)."""

from repro.analysis import (arms_race_markdown, arms_race_rows,
                            arms_race_table, dose_response_series)
from repro.defense import ArmsRaceCell


def _cell(cells=5500, strikes=4500, defense="none", attacked=0.9,
          overhead=0.0):
    return ArmsRaceCell(
        bank_cells=cells, n_strikes=strikes, defense=defense,
        clean_accuracy=0.98, attacked_accuracy=attacked,
        residual_mismatch_rate=round(0.98 - attacked, 4),
        replay_overhead=overhead, razor_flags=0, replays=0,
        exhausted=0, strikes_landed=strikes,
    )


GRID = [
    _cell(3000, defense="none", attacked=0.95),
    _cell(3000, defense="recover", attacked=0.98, overhead=0.1),
    _cell(8000, defense="none", attacked=0.60),
    _cell(8000, defense="recover", attacked=0.97, overhead=0.4),
]


class TestTables:
    def test_rows_follow_sweep_order(self):
        rows = arms_race_rows(GRID)
        assert len(rows) == 4
        assert rows[0][0] == 3000 and rows[0][2] == "none"
        assert rows[-1][2] == "recover"

    def test_accuracy_drop_column(self):
        rows = arms_race_rows([_cell(attacked=0.88)])
        assert rows[0][5] == GRID[0].clean_accuracy - 0.88

    def test_fixed_table_renders(self):
        text = arms_race_table(GRID)
        assert "defense" in text and "overhead" in text
        assert "recover" in text

    def test_markdown_table_renders(self):
        text = arms_race_markdown(GRID)
        assert text.startswith("| cells |")
        assert "| none |" in text

    def test_empty_grid_renders(self):
        assert "defense" in arms_race_table([])


class TestDoseResponse:
    def test_series_keyed_by_defense_x_is_cells(self):
        series = dose_response_series(GRID)
        assert set(series) == {"none", "recover"}
        assert series["none"] == [(3000, 0.95), (8000, 0.60)]
        assert series["recover"] == [(3000, 0.98), (8000, 0.97)]

    def test_x_axis_falls_back_to_strikes(self):
        grid = [_cell(strikes=1000, attacked=0.95),
                _cell(strikes=4500, attacked=0.70)]
        series = dose_response_series(grid)
        assert series["none"] == [(1000, 0.95), (4500, 0.70)]
