"""Tests of the detect-and-recover hardened engine."""

from dataclasses import replace

import numpy as np
import pytest

from repro.accel import AcceleratorEngine
from repro.accel.engine import StruckCycles
from repro.config import RecoveryConfig, default_config
from repro.defense import HardenedAcceleratorEngine
from repro.errors import ConfigError, RecoveryExhaustedError
from repro.nn.model import PROBE_INPUT_SHAPE

#: Rail voltage in the mid-intensity regime (faults common, replay at
#: half clock comes out clean) and in the overwhelming regime (even a
#: full-rate replay faults on every exposed op).
MID_DROOP_V = 0.935
DEEP_DROOP_V = 0.90


def _images(n=8, seed=5):
    return np.random.default_rng(seed).random((n,) + PROBE_INPUT_SHAPE)


def _strikes(layer="conv3x3", n_cycles=6, voltage=MID_DROOP_V):
    cycles = np.arange(n_cycles)
    return [StruckCycles(layer, cycles, np.full(n_cycles, voltage))]


def _engine(probe_quantized, recovery=None, seed=1, calibrate=None):
    config = default_config()
    if recovery is not None:
        config = replace(config, recovery=recovery)
    engine = HardenedAcceleratorEngine(probe_quantized, config,
                                       np.random.default_rng(seed),
                                       PROBE_INPUT_SHAPE)
    if calibrate is not None:
        engine.calibrate(calibrate)
    return engine


class TestCleanPath:
    def test_clean_outputs_bit_identical_to_undefended(self,
                                                       probe_quantized):
        images = _images()
        base = AcceleratorEngine(probe_quantized, default_config(),
                                 np.random.default_rng(1),
                                 PROBE_INPUT_SHAPE)
        hard = _engine(probe_quantized, calibrate=images)
        assert np.array_equal(base.infer_under_attack(images, []),
                              hard.infer_under_attack(images, []))

    def test_clean_traffic_costs_nothing(self, probe_quantized):
        images = _images()
        hard = _engine(probe_quantized, calibrate=images)
        hard.infer_under_attack(images, [])
        assert hard.stats.overhead_fraction == 0.0
        assert hard.stats.razor_flags == 0
        assert hard.stats.replays == 0
        assert hard.stats.clamped_values == 0

    def test_clamp_enabled_requires_calibration(self, probe_quantized):
        hard = _engine(probe_quantized)
        with pytest.raises(ConfigError):
            hard.infer_under_attack(_images(), [])


class TestRecovery:
    def test_mid_intensity_strike_fully_recovered(self, probe_quantized):
        images = _images()
        base = AcceleratorEngine(probe_quantized, default_config(),
                                 np.random.default_rng(1),
                                 PROBE_INPUT_SHAPE)
        hard = _engine(probe_quantized, calibrate=images)
        clean = base.infer_under_attack(images, [])
        struck_base = base.infer_under_attack(images, _strikes())
        struck_hard = hard.infer_under_attack(images, _strikes())
        # The attack damages the undefended engine...
        assert not np.array_equal(struck_base, clean)
        # ...and the hardened engine replays its way back to clean.
        assert np.array_equal(struck_hard, clean)
        assert hard.stats.razor_flags > 0
        assert hard.stats.replays > 0
        assert hard.stats.exhausted == 0
        assert hard.stats.overhead_fraction > 0.0

    def test_only_flagged_images_replay(self, probe_quantized):
        """Razor flags are per image; the replay set is the flagged set,
        bounded by the batch."""
        images = _images(n=16)
        hard = _engine(probe_quantized, calibrate=images)
        hard.infer_under_attack(images, _strikes(n_cycles=2))
        assert hard.stats.replays <= 16
        assert hard.stats.replays >= hard.stats.razor_flags - 16

    def test_exhaustion_raises_with_layer_and_attempts(self,
                                                       probe_quantized):
        # A full-rate "replay" (divisor 1) at deep droop faults again
        # every attempt, so the budget must run out.
        recovery = RecoveryConfig(replay_clock_divisor=1,
                                  max_replays_per_layer=2)
        images = _images(n=4)
        hard = _engine(probe_quantized, recovery, seed=3,
                       calibrate=images)
        with pytest.raises(RecoveryExhaustedError) as excinfo:
            hard.infer_under_attack(
                images, _strikes(n_cycles=8, voltage=DEEP_DROOP_V))
        assert excinfo.value.layer == "conv3x3"
        assert excinfo.value.attempts == 2

    def test_accept_policy_survives_exhaustion(self, probe_quantized):
        recovery = RecoveryConfig(replay_clock_divisor=1,
                                  max_replays_per_layer=2,
                                  exhaustion_policy="accept")
        images = _images(n=4)
        hard = _engine(probe_quantized, recovery, seed=3,
                       calibrate=images)
        out = hard.infer_under_attack(
            images, _strikes(n_cycles=8, voltage=DEEP_DROOP_V))
        assert out.shape[0] == 4
        assert hard.stats.exhausted > 0

    def test_razor_disabled_matches_undefended_outcomes(self,
                                                        probe_quantized):
        """With detection and containment off, the hardened engine is
        the undefended engine: same RNG stream, same faulted outputs."""
        recovery = RecoveryConfig(razor_enabled=False,
                                  clamp_activations=False)
        images = _images()
        base = AcceleratorEngine(probe_quantized, default_config(),
                                 np.random.default_rng(9),
                                 PROBE_INPUT_SHAPE)
        hard = _engine(probe_quantized, recovery, seed=9)
        assert np.array_equal(base.infer_under_attack(images, _strikes()),
                              hard.infer_under_attack(images, _strikes()))
        assert hard.stats.razor_flags == 0
        assert hard.stats.replays == 0


class TestDeterminism:
    def test_same_seed_same_outputs_and_stats(self, probe_quantized):
        images = _images()

        def run():
            hard = _engine(probe_quantized, seed=42, calibrate=images)
            out = hard.infer_under_attack(images, _strikes())
            return out, hard.stats.as_dict()

        out_a, stats_a = run()
        out_b, stats_b = run()
        assert np.array_equal(out_a, out_b)
        assert stats_a == stats_b


class TestDroopAlarms:
    def test_layers_at_ticks_maps_schedule(self, probe_quantized):
        hard = _engine(probe_quantized,
                       RecoveryConfig(clamp_activations=False))
        tpc = hard.config.clock.ticks_per_victim_cycle
        window = hard.schedule.window("conv1x1")
        ticks = [(window.start_cycle + 1) * tpc,
                 (window.start_cycle + 2) * tpc,  # same layer: no dup
                 hard.schedule.total_cycles * tpc + 99]  # past the end
        assert hard.layers_at_ticks(ticks) == ["conv1x1"]

    def test_stall_ticks_map_to_no_layer(self, probe_quantized):
        hard = _engine(probe_quantized,
                       RecoveryConfig(clamp_activations=False))
        assert hard.layers_at_ticks([0]) == []  # initial load stall

    def test_alarm_on_unstruck_layer_costs_but_preserves_output(
            self, probe_quantized):
        images = _images()
        quiet = _engine(probe_quantized, seed=11, calibrate=images)
        alarmed = _engine(probe_quantized, seed=11, calibrate=images)
        out_quiet = quiet.infer_under_attack(images, [])
        out_alarmed = alarmed.infer_under_attack(
            images, [], alarmed_layers=["conv1x1"])
        assert np.array_equal(out_quiet, out_alarmed)
        assert alarmed.stats.forced_replays == images.shape[0]
        assert alarmed.stats.overhead_fraction > 0.0
        assert quiet.stats.overhead_fraction == 0.0

    def test_alarm_on_struck_layer_forces_full_replay(self,
                                                      probe_quantized):
        images = _images(n=4)
        hard = _engine(probe_quantized, seed=12, calibrate=images)
        hard.infer_under_attack(images, _strikes(n_cycles=1),
                                alarmed_layers=["conv3x3"])
        # Every image replays, flagged or not.
        assert hard.stats.replays >= images.shape[0]

    def test_unknown_alarmed_layer_rejected(self, probe_quantized):
        hard = _engine(probe_quantized, calibrate=_images())
        with pytest.raises(ConfigError):
            hard.infer_under_attack(_images(), [],
                                    alarmed_layers=["fc99"])


class TestTMR:
    def test_tmr_votes_final_fc_back_to_clean(self, victim, config):
        """At shallow droop the same element rarely corrupts in two of
        three runs, so the median vote restores most of what the
        undefended engine gets wrong.  (Deep droop corrupts every vote —
        TMR is a backstop, not the primary defense.)

        Fault decisions are stochastic, so a single seed is a coin
        flip; aggregating mispredictions over many independent seeds
        gives the halving assertion below roughly a 4-sigma margin.
        """
        images = victim.dataset.test_images[:64]
        recovery = RecoveryConfig(tmr_final_fc=True,
                                  razor_enabled=False,
                                  clamp_activations=False)
        cfg = replace(config, recovery=recovery)
        cycles = np.arange(2)
        strikes = [StruckCycles("fc2", cycles,
                                np.full(cycles.shape, 0.949),
                                force_class="random")]
        undefended_errors = voted_errors = 0
        for seed in range(20):
            hard = HardenedAcceleratorEngine(victim.quantized, cfg,
                                             np.random.default_rng(seed))
            base = AcceleratorEngine(victim.quantized, config,
                                     np.random.default_rng(seed))
            clean = hard.predict_clean(images)
            voted = hard.predict_under_attack(images, strikes)
            undefended = base.predict_under_attack(images, strikes)
            undefended_errors += int((undefended != clean).sum())
            voted_errors += int((voted != clean).sum())
            assert hard.stats.tmr_votes == images.shape[0]
            assert hard.stats.tmr_cycles > 0
            assert hard.stats.overhead_fraction > 0.0
        # The attack must actually bite, and the vote must repair at
        # least half of the corrupted predictions.
        assert undefended_errors > 0
        assert voted_errors * 2 < undefended_errors
