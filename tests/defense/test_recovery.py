"""Unit tests for the recovery building blocks (razor, clamp, stats)."""

import numpy as np
import pytest

from repro.config import RecoveryConfig
from repro.defense import ActivationClamp, RazorDetector, RecoveryStats, StageBounds
from repro.dsp.faults import FaultType
from repro.errors import ConfigError


def _types(*entries):
    return np.asarray(entries, dtype=np.int64)


class TestRazorDetector:
    def test_no_faults_never_flags_and_skips_rng(self):
        razor = RazorDetector(RecoveryConfig(), np.random.default_rng(0))
        clean = np.full(50, FaultType.NONE)
        assert razor.observe(clean) is False
        # The clean path must not consume randomness: the next draw
        # matches a fresh generator with the same seed.
        assert razor.rng.random() == np.random.default_rng(0).random()
        assert razor.stats["dup_seen"] == 0
        assert razor.stats["random_seen"] == 0

    def test_full_coverage_always_flags(self):
        cfg = RecoveryConfig(razor_dup_coverage=1.0,
                             razor_random_coverage=1.0)
        razor = RazorDetector(cfg, np.random.default_rng(1))
        assert razor.observe(_types(FaultType.DUPLICATION)) is True
        assert razor.observe(_types(FaultType.RANDOM)) is True
        assert razor.stats["dup_flagged"] == 1
        assert razor.stats["random_flagged"] == 1

    def test_zero_coverage_never_flags(self):
        cfg = RecoveryConfig(razor_dup_coverage=0.0,
                             razor_random_coverage=0.0)
        razor = RazorDetector(cfg, np.random.default_rng(2))
        mixed = _types(FaultType.DUPLICATION, FaultType.RANDOM,
                       FaultType.NONE)
        for _ in range(20):
            assert razor.observe(mixed) is False
        assert razor.stats["dup_seen"] == 20
        assert razor.stats["dup_flagged"] == 0

    def test_class_conditional_coverage_rates(self):
        cfg = RecoveryConfig(razor_dup_coverage=0.95,
                             razor_random_coverage=0.65)
        razor = RazorDetector(cfg, np.random.default_rng(3))
        n = 4000
        razor.observe(np.full(n, FaultType.DUPLICATION))
        razor.observe(np.full(n, FaultType.RANDOM))
        assert razor.stats["dup_flagged"] / n == pytest.approx(0.95,
                                                               abs=0.02)
        assert razor.stats["random_flagged"] / n == pytest.approx(0.65,
                                                                  abs=0.03)

    def test_deterministic_under_fixed_seed(self):
        cfg = RecoveryConfig()
        stream = _types(FaultType.DUPLICATION, FaultType.NONE,
                        FaultType.RANDOM)
        a = RazorDetector(cfg, np.random.default_rng(7))
        b = RazorDetector(cfg, np.random.default_rng(7))
        flags_a = [a.observe(stream) for _ in range(30)]
        flags_b = [b.observe(stream) for _ in range(30)]
        assert flags_a == flags_b
        assert a.stats == b.stats


class TestActivationClamp:
    def test_calibrated_clamp_is_noop_on_clean(self, probe_quantized):
        rng = np.random.default_rng(5)
        images = rng.random((6, 4, 28, 28))
        clamp = ActivationClamp.calibrate(probe_quantized, images,
                                          margin=0.0)
        codes = probe_quantized.quantize_input(images)
        for stage in probe_quantized.stages:
            codes = stage.forward_codes(codes)
            if getattr(stage, "kind", "") in ("conv", "dense", "pool"):
                clipped, n_clamped = clamp.apply(stage.name, codes)
                assert n_clamped == 0
                assert np.array_equal(clipped, codes)

    def test_out_of_range_garbage_clamped(self, probe_quantized):
        rng = np.random.default_rng(6)
        images = rng.random((4, 4, 28, 28))
        clamp = ActivationClamp.calibrate(probe_quantized, images)
        name = next(iter(clamp.bounds))
        lo, hi = clamp.limits(name)
        garbage = np.asarray([lo - 10_000, hi + 10_000, (lo + hi) // 2])
        clipped, n_clamped = clamp.apply(name, garbage)
        assert n_clamped == 2
        assert clipped.min() >= lo and clipped.max() <= hi

    def test_margin_widens_the_envelope(self):
        clamp_tight = ActivationClamp({"l": StageBounds(-100, 100)}, 0.0)
        clamp_wide = ActivationClamp({"l": StageBounds(-100, 100)}, 0.1)
        assert clamp_tight.limits("l") == (-100, 100)
        assert clamp_wide.limits("l") == (-120, 120)

    def test_unknown_layer_rejected(self):
        clamp = ActivationClamp({"l": StageBounds(0, 1)})
        with pytest.raises(ConfigError):
            clamp.limits("nope")

    def test_empty_bounds_and_bad_margin_rejected(self):
        with pytest.raises(ConfigError):
            ActivationClamp({})
        with pytest.raises(ConfigError):
            ActivationClamp({"l": StageBounds(0, 1)}, margin=-0.1)

    def test_empty_calibration_batch_rejected(self, probe_quantized):
        with pytest.raises(ConfigError):
            ActivationClamp.calibrate(probe_quantized,
                                      np.empty((0, 4, 28, 28)))


class TestRecoveryStats:
    def test_overhead_zero_without_work(self):
        assert RecoveryStats().overhead_fraction == 0.0
        assert RecoveryStats(base_cycles=100).overhead_fraction == 0.0

    def test_overhead_fraction(self):
        stats = RecoveryStats(base_cycles=1000, replay_cycles=300,
                              tmr_cycles=200)
        assert stats.overhead_fraction == pytest.approx(0.5)

    def test_as_dict_round_trip(self):
        stats = RecoveryStats(images=4, base_cycles=10, replays=2)
        payload = stats.as_dict()
        assert payload["images"] == 4
        assert payload["replays"] == 2
        assert "overhead_fraction" in payload
        assert "extra" not in payload


class TestRecoveryConfig:
    def test_defaults_validate(self):
        RecoveryConfig().validate()

    @pytest.mark.parametrize("kwargs", [
        {"razor_dup_coverage": 1.5},
        {"razor_random_coverage": -0.1},
        {"max_replays_per_layer": -1},
        {"replay_clock_divisor": 0},
        {"clamp_margin": -0.5},
        {"calibration_images": 0},
        {"exhaustion_policy": "panic"},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RecoveryConfig(**kwargs).validate()
