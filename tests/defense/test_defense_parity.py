"""Differential parity: the batched defended engine vs its references.

Two tiers, mirroring ``tests/accel/test_backend_parity.py``:

* **exact bytes** — under the fxp dtype policy the batched razor
  observation path (``observe_batch_dense`` fed by the engine's
  ``_observe_fault_sites`` hook) must be bit-identical, outputs *and*
  stats, to the pre-batching per-image reference: the base engine's
  site hook fanning each image out to ``_observe_fault_types``.  The
  vectorization may not move a byte.
* **pinned tolerance** — the fp32 fast tier draws different (by design)
  fault streams, so defended arms-race cell metrics are pinned to a
  small tolerance of the fxp reference instead.

Plus the cross-cell reuse contract: a warm :class:`ArmsRaceStudy`
(engines, plans, and clean traces cached across cells) must reproduce a
cold study's cells exactly, in any order.
"""

from dataclasses import asdict, replace

import numpy as np
import pytest

from repro.accel import AcceleratorEngine
from repro.accel.engine import StruckCycles
from repro.config import RecoveryConfig, default_config
from repro.defense import HardenedAcceleratorEngine
from repro.defense.evaluation import ArmsRaceStudy, resolve_defense
from repro.nn.model import PROBE_INPUT_SHAPE

MID_DROOP_V = 0.935
DEEP_DROOP_V = 0.90
#: Same per-cell attacked-accuracy tolerance the backend parity suite
#: pins the fp32 tier to (worst observed delta 0.05; broken is 0.3+).
ACCURACY_TOL = 0.08
STRIKES = 4500


class LegacyHardened(HardenedAcceleratorEngine):
    """The pre-batching reference engine: razor observation through the
    base engine's per-image fan-out (one ``_observe_fault_types`` call
    per image) instead of the batched site hook."""

    _observe_fault_sites = AcceleratorEngine._observe_fault_sites


def _images(n=8, seed=5):
    return np.random.default_rng(seed).random((n,) + PROBE_INPUT_SHAPE)


def _strikes(layer="conv3x3", n_cycles=6, voltage=MID_DROOP_V):
    cycles = np.arange(n_cycles)
    return [StruckCycles(layer, cycles, np.full(n_cycles, voltage))]


def _engine(cls, model, recovery=None, seed=1, calibrate=None,
            input_shape=PROBE_INPUT_SHAPE):
    config = default_config()
    if recovery is not None:
        config = replace(config, recovery=recovery)
    engine = cls(model, config, np.random.default_rng(seed), input_shape)
    if calibrate is not None:
        engine.calibrate(calibrate)
    return engine


def _pair(model, recovery=None, seed=1, calibrate=None,
          input_shape=PROBE_INPUT_SHAPE):
    """(batched, legacy) engines in identical starting states."""
    return (_engine(HardenedAcceleratorEngine, model, recovery, seed,
                    calibrate, input_shape),
            _engine(LegacyHardened, model, recovery, seed, calibrate,
                    input_shape))


class TestBatchedVsPerImageReference:
    """fxp tier: vectorized detect/replay may not move a byte."""

    def test_mid_droop_recovery_bit_identical(self, probe_quantized):
        images = _images(n=16)
        batched, legacy = _pair(probe_quantized, calibrate=images)
        out_b = batched.infer_under_attack(images, _strikes())
        out_l = legacy.infer_under_attack(images, _strikes())
        assert np.array_equal(out_b, out_l)
        assert batched.stats.as_dict() == legacy.stats.as_dict()
        # Vacuity guard: the attack bit and the recovery machinery ran.
        assert batched.stats.razor_flags > 0
        assert batched.stats.replays > 0

    def test_deep_droop_exhaustion_bit_identical(self, probe_quantized):
        recovery = RecoveryConfig(replay_clock_divisor=1,
                                  max_replays_per_layer=2,
                                  exhaustion_policy="accept")
        images = _images(n=8)
        batched, legacy = _pair(probe_quantized, recovery, seed=3,
                                calibrate=images)
        strikes = _strikes(n_cycles=8, voltage=DEEP_DROOP_V)
        assert np.array_equal(batched.infer_under_attack(images, strikes),
                              legacy.infer_under_attack(images, strikes))
        assert batched.stats.as_dict() == legacy.stats.as_dict()
        assert batched.stats.exhausted > 0

    def test_multi_layer_strikes_bit_identical(self, probe_quantized):
        images = _images(n=12, seed=8)
        batched, legacy = _pair(probe_quantized, seed=7, calibrate=images)
        strikes = _strikes("conv3x3") + _strikes("conv1x1", n_cycles=4)
        assert np.array_equal(batched.infer_under_attack(images, strikes),
                              legacy.infer_under_attack(images, strikes))
        assert batched.stats.as_dict() == legacy.stats.as_dict()

    def test_lenet_victim_bit_identical(self, victim):
        """The real victim drives the batched path through its largest
        exposure records (where the dense grids actually trigger)."""
        images = victim.dataset.test_images[:32]
        batched, legacy = _pair(victim.quantized, seed=2,
                                calibrate=images, input_shape=(1, 28, 28))
        strikes = _strikes("conv2")
        out_b = batched.infer_under_attack(images, strikes)
        out_l = legacy.infer_under_attack(images, strikes)
        assert np.array_equal(out_b, out_l)
        assert batched.stats.as_dict() == legacy.stats.as_dict()
        assert batched.stats.razor_flags > 0


class TestFp32Tier:
    """fp32 tier: distribution-identical, pinned by tolerance."""

    def _cells(self, victim, dtype):
        config = replace(default_config(), dtype_policy=dtype)
        study = ArmsRaceStudy(victim.quantized,
                              victim.dataset.test_images[:96],
                              victim.dataset.test_labels[:96],
                              config=config, seed=7)
        return study.sweep([(5500, STRIKES)])

    def test_defended_cell_metrics_within_tolerance(self, victim):
        ref = self._cells(victim, "fxp")
        fast = self._cells(victim, "fp32")
        assert [(c.bank_cells, c.defense) for c in ref] == \
            [(c.bank_cells, c.defense) for c in fast]
        for a, b in zip(ref, fast):
            # The clean pass has no randomness and every code fits
            # float32 exactly — the clean tier owes exactness.
            assert a.clean_accuracy == b.clean_accuracy
            delta = abs(a.attacked_accuracy - b.attacked_accuracy)
            assert delta <= ACCURACY_TOL, \
                f"{a.defense}@{a.bank_cells}: fp32 attacked accuracy " \
                f"off by {delta:.4f} (tol {ACCURACY_TOL})"


class TestCrossCellReuse:
    """A warm study's cached engines/plans/traces change no results."""

    def _study(self, victim, seed=3):
        return ArmsRaceStudy(victim.quantized,
                             victim.dataset.test_images[:64],
                             victim.dataset.test_labels[:64],
                             seed=seed)

    def test_warm_sweep_reproduces_cold_sweep_exactly(self, victim):
        grid = [(3000, STRIKES), (5500, STRIKES)]
        study = self._study(victim)
        cold = study.sweep(grid)
        warm = study.sweep(grid)  # every engine/plan/trace now cached
        assert [asdict(c) for c in warm] == [asdict(c) for c in cold]

    def test_cell_seeds_are_order_independent(self, victim):
        recovery = resolve_defense("recover")
        cold = self._study(victim).run_cell(5500, STRIKES, recovery,
                                            label="recover")
        warm_study = self._study(victim)
        warm_study.run_cell(3000, STRIKES)  # consume engine RNG first
        warm = warm_study.run_cell(5500, STRIKES, recovery,
                                   label="recover")
        assert asdict(warm) == asdict(cold)
