"""Defence-side tests: droop monitor and bitstream scanner."""

import numpy as np
import pytest

from repro.defense import BitstreamScanner, DroopMonitor
from repro.errors import ConfigError
from repro.fpga.netlist import Netlist
from repro.sensors import build_tdc_netlist
from repro.striker import build_ro_cell_netlist, build_striker_cell_netlist
from repro.config import default_config


class TestDroopMonitor:
    def _clean(self, rng, n=2000, floor=84):
        """A plausible clean trace: stall level with activity droops."""
        trace = np.full(n, 92.0)
        trace[500:1500] = floor + 2  # layer activity
        return trace + rng.normal(0, 0.7, size=n)

    def test_untrained_monitor_rejects_watch(self):
        with pytest.raises(ConfigError):
            DroopMonitor().watch(np.full(10, 92))

    def test_clean_traffic_no_alarm(self):
        rng = np.random.default_rng(0)
        monitor = DroopMonitor().fit([self._clean(rng) for _ in range(4)])
        verdict = monitor.watch(self._clean(rng))
        assert not verdict.alarmed

    def test_strike_train_detected_by_floor(self):
        rng = np.random.default_rng(1)
        monitor = DroopMonitor().fit([self._clean(rng) for _ in range(4)])
        attacked = self._clean(rng)
        attacked[800:1200:10] = 60  # strike dips far below the envelope
        verdict = monitor.watch(attacked)
        assert verdict.alarmed
        assert verdict.floor_alarms > 10
        assert 790 <= verdict.first_alarm_tick <= 810

    def test_gentle_drift_detected_by_cusum(self):
        rng = np.random.default_rng(2)
        monitor = DroopMonitor(floor_margin=10.0).fit(
            [self._clean(rng) for _ in range(4)]
        )
        attacked = self._clean(rng)
        # Persistent shallow dips below the clean floor, but inside the
        # (here deliberately wide) floor margin.
        attacked[1000:] = monitor.clean_floor - 3.0
        verdict = monitor.watch(attacked)
        assert verdict.alarmed
        assert verdict.cusum_alarms > 0 and verdict.floor_alarms == 0

    def test_latency_accounting(self):
        rng = np.random.default_rng(3)
        monitor = DroopMonitor().fit([self._clean(rng)])
        attacked = self._clean(rng)
        attacked[1000] = 50
        verdict = monitor.watch(attacked)
        latency = monitor.detection_latency_s(verdict, dt=5e-9,
                                              attack_start_tick=1000)
        assert latency == pytest.approx(0.0)
        # An alarm before the attack start counts as a false positive.
        assert monitor.detection_latency_s(verdict, 5e-9, 1500) is None

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ConfigError):
            DroopMonitor(floor_margin=0.0)


class TestBitstreamScanner:
    def test_striker_bank_blocked(self):
        nl = Netlist("bank")
        for k in range(64):
            build_striker_cell_netlist(k, netlist=nl)
        report = BitstreamScanner().scan(nl)
        assert not report.admit
        checks = {f.check for f in report.findings if f.severity == "block"}
        assert BitstreamScanner.CHECK_LATCH_LOOP in checks
        assert BitstreamScanner.CHECK_GATE_FANOUT in checks
        assert report.potential_oscillators >= 64

    def test_single_cell_still_blocked_by_loops(self):
        nl = build_striker_cell_netlist()
        report = BitstreamScanner(max_oscillator_groups=0).scan(nl)
        assert not report.admit

    def test_ro_cell_flagged(self):
        report = BitstreamScanner().scan(build_ro_cell_netlist())
        assert not report.admit

    def test_tdc_admitted(self):
        report = BitstreamScanner().scan(
            build_tdc_netlist(default_config().tdc)
        )
        assert report.admit
        assert report.potential_oscillators == 0

    def test_empty_netlist_admitted(self):
        assert BitstreamScanner().scan(Netlist("empty")).admit

    def test_summary_text(self):
        nl = Netlist("bank8")
        for k in range(8):
            build_striker_cell_netlist(k, netlist=nl)
        text = BitstreamScanner().scan(nl).summary()
        assert "REJECT" in text
        # A lone inferred latch loop only warrants review, not rejection.
        single = BitstreamScanner(max_gate_fanout=64).scan(
            build_striker_cell_netlist()
        )
        assert "ADMIT" in single.summary()

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            BitstreamScanner(max_gate_fanout=0)
        with pytest.raises(ConfigError):
            BitstreamScanner(max_latch_fraction=0.0)
