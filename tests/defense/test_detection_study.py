"""Tests for DetectionStudy: monitor scoring on seeded traces."""

import numpy as np
import pytest

from repro.defense import DetectionStudy, DroopMonitor
from repro.errors import ConfigError
from repro.sensors import GateDelayModel, TDCSensor
from repro.sensors.calibration import theta_for_target


@pytest.fixture(scope="module")
def sensor(config):
    delay_model = GateDelayModel(config.delay)
    theta = theta_for_target(config.tdc, delay_model, voltage=0.9867)
    return TDCSensor(config.tdc, delay_model, theta,
                     rng=np.random.default_rng(55))


@pytest.fixture(scope="module")
def study(probe_engine, sensor):
    return DetectionStudy(probe_engine, sensor, seed=7)


class TestDetectionStudy:
    def test_targets_busiest_layer(self, study, probe_engine):
        lanes = max(w.plan.lanes for w in probe_engine.schedule.windows())
        assert study.target.plan.lanes == lanes

    def test_strong_attack_detected_without_false_alarms(self, study):
        result = study.evaluate(DroopMonitor(), bank_cells=8000,
                                n_strikes=min(200, study.target.cycles),
                                trials=2, clean_trials=2)
        assert result.detection_rate == 1.0
        assert result.false_alarm_rate == 0.0
        assert result.mean_latency_s is not None
        assert result.mean_latency_s >= 0.0

    def test_no_striker_cells_never_detected(self, study):
        result = study.evaluate(DroopMonitor(), bank_cells=0,
                                n_strikes=min(200, study.target.cycles),
                                trials=2, clean_trials=2)
        assert result.detection_rate == 0.0

    def test_detection_rate_monotone_in_bank_size(self, study):
        strikes = min(200, study.target.cycles)
        weak, strong = study.sweep(DroopMonitor(),
                                   [(0, strikes), (8000, strikes)],
                                   trials=2)
        assert weak.detection_rate <= strong.detection_rate

    def test_bad_strike_count_rejected(self, study):
        with pytest.raises(ConfigError):
            study.attacked_trace(8000, 0)
        with pytest.raises(ConfigError):
            study.attacked_trace(8000, study.target.cycles + 1)

    def test_traces_are_seed_deterministic(self, probe_engine, config):
        def fresh_study():
            # The sensor is stateful (its readout-noise RNG advances per
            # trace), so determinism holds per (sensor, study) pair.
            delay_model = GateDelayModel(config.delay)
            theta = theta_for_target(config.tdc, delay_model,
                                     voltage=0.9867)
            fresh = TDCSensor(config.tdc, delay_model, theta,
                              rng=np.random.default_rng(55))
            return DetectionStudy(probe_engine, fresh, seed=7)

        a, b = fresh_study(), fresh_study()
        assert np.array_equal(a.attacked_trace(5000, 50),
                              b.attacked_trace(5000, 50))
        assert np.array_equal(a.clean_traces(1)[0], b.clean_traces(1)[0])

    def test_attack_start_tick_matches_schedule(self, study, config):
        tpc = config.clock.ticks_per_victim_cycle
        assert study.attack_start_tick == study.target.start_cycle * tpc
