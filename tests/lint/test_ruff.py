"""Style-layer gate: ruff (pycodestyle/pyflakes/isort subset) per the
committed ``[tool.ruff]`` config.

ruff is an *optional* dev dependency — the runtime container does not
ship it, so this test self-skips when the binary is absent.  CI
installs ruff in the lint job and runs both this and ``repro lint
--strict``; the contract linter (tests above) carries the repo-specific
rules either way.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.skipif(
    shutil.which("ruff") is None,
    reason="ruff not installed (optional dev dependency; CI installs it)",
)


def test_pyproject_configures_ruff():
    pyproject = (REPO_ROOT / "pyproject.toml").read_text()
    assert "[tool.ruff]" in pyproject
    assert "[tool.ruff.lint]" in pyproject


def test_ruff_check_is_clean():
    result = subprocess.run(
        ["ruff", "check", "src", "tests"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_ruff_import_sort_is_clean():
    result = subprocess.run(
        ["ruff", "check", "--select", "I", "src", "tests"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
