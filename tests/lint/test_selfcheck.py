"""The linter's own acceptance gate: the real package lints clean under
the committed baseline, the baseline grants nothing it shouldn't, and
mutation tests prove the contracts actually bite — un-wiring the
injectable clock or adding a raw checkpoint write makes strict lint
fail."""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.lint import Baseline, default_baseline_path

PACKAGE_DIR = Path(repro.__file__).resolve().parent


class TestCommittedBaseline:
    def test_strict_lint_is_clean_on_real_package(self):
        assert main(["lint", "--strict"]) == 0

    def test_baseline_grants_no_durability_or_clock_entries(self):
        """The whole point of the PR: durability and clock baselines are
        EMPTY — those contracts hold everywhere, not grandfathered."""
        baseline = Baseline.load(default_baseline_path())
        granted = set(baseline.rules_present())
        assert "REPRO-DUR001" not in granted
        assert "REPRO-CLK001" not in granted

    def test_baseline_grants_no_rng_or_backend_entries(self):
        baseline = Baseline.load(default_baseline_path())
        granted = set(baseline.rules_present())
        assert not granted & {"REPRO-RNG001", "REPRO-RNG002",
                              "REPRO-RNG003", "REPRO-XP001",
                              "REPRO-WIRE001"}

    def test_every_baseline_entry_has_a_reason(self):
        baseline = Baseline.load(default_baseline_path())
        assert baseline.entries, "baseline unexpectedly empty"
        for entry in baseline.entries:
            assert entry.reason.strip(), f"undocumented grant: {entry}"


@pytest.fixture
def package_copy(tmp_path):
    """A mutable copy of the installed package at ``tmp/repro`` —
    relpaths (and therefore scopes and the committed baseline) match the
    real tree exactly."""
    dest = tmp_path / "repro"
    shutil.copytree(PACKAGE_DIR, dest,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return dest


class TestMutations:
    def test_unmutated_copy_is_clean(self, package_copy):
        assert main(["lint", str(package_copy), "--strict"]) == 0

    def test_removing_clock_injection_fails_lint(self, package_copy,
                                                 capsys):
        """Un-wire the supervisor's injectable clock: direct
        ``time.monotonic()`` calls must trip REPRO-CLK001."""
        supervisor = package_copy / "core" / "supervisor.py"
        source = supervisor.read_text()
        assert "_monotonic()" in source
        supervisor.write_text(
            source.replace("_monotonic()", "time.monotonic()"))
        assert main(["lint", str(package_copy), "--strict"]) == 1
        assert "REPRO-CLK001" in capsys.readouterr().out

    def test_raw_checkpoint_write_fails_lint(self, package_copy, capsys):
        """A bare ``open(..., "w")`` checkpoint write in core/ must trip
        REPRO-DUR001 — only the fsync-atomic writer is sanctioned."""
        executor = package_copy / "core" / "executor.py"
        executor.write_text(
            executor.read_text() +
            '\n\ndef _unsafe_checkpoint(path, payload):\n'
            '    with open(path, "w") as fh:\n'
            '        fh.write(payload)\n')
        assert main(["lint", str(package_copy), "--strict"]) == 1
        assert "REPRO-DUR001" in capsys.readouterr().out

    def test_global_rng_call_fails_lint(self, package_copy):
        stacked = package_copy / "core" / "stacked.py"
        stacked.write_text(
            stacked.read_text() +
            "\n\ndef _jitter():\n"
            "    import numpy as np\n"
            "    return np.random.rand()\n")
        assert main(["lint", str(package_copy), "--strict"]) == 1
