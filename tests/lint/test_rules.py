"""Per-rule fixture tests: one violating and one clean variant each.

Fixture files are written under fake ``repro/...`` relpaths so the real
scope patterns apply; findings are selected by rule id so the full
default rule set can run over every fixture (catching scope bleed
between rules as a side effect).
"""

from __future__ import annotations

import pytest

from repro.lint import lint_paths
from repro.lint.rules import (
    BackendPurityRule,
    BareExceptRule,
    ClockDisciplineRule,
    DurableWriteRule,
    GlobalStateRngRule,
    HotLoopRngRule,
    RaiseDisciplineRule,
    UnseededRngRule,
    WireCompletenessRule,
)


def ids(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


class TestGlobalStateRng:
    def test_flags_legacy_module_calls(self, make_tree, run_lint):
        root = make_tree({"repro/striker/noise.py": (
            "import numpy as np\n"
            "def jitter(x):\n"
            "    np.random.seed(3)\n"
            "    return np.random.shuffle(x)\n"
        )})
        found = ids(run_lint(root), "REPRO-RNG001")
        assert [f.line for f in found] == [3, 4]
        assert "global-state" in found[0].message

    def test_flags_from_import_alias(self, make_tree, run_lint):
        root = make_tree({"repro/x.py": (
            "from numpy.random import shuffle as mix\n"
            "def f(x):\n"
            "    mix(x)\n"
        )})
        assert len(ids(run_lint(root), "REPRO-RNG001")) == 1

    def test_clean_generator_usage(self, make_tree, run_lint):
        root = make_tree({"repro/x.py": (
            "import numpy as np\n"
            "def f(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.shuffle([1, 2])\n"
        )})
        assert ids(run_lint(root), "REPRO-RNG001") == []


class TestUnseededRng:
    def test_flags_unseeded(self, make_tree, run_lint):
        root = make_tree({"repro/x.py": (
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        )})
        found = ids(run_lint(root), "REPRO-RNG002")
        assert len(found) == 1 and found[0].line == 2

    def test_seeded_and_kwarg_seeded_clean(self, make_tree, run_lint):
        root = make_tree({"repro/x.py": (
            "from numpy.random import default_rng\n"
            "a = default_rng(7)\n"
            "b = default_rng(seed=9)\n"
        )})
        assert ids(run_lint(root), "REPRO-RNG002") == []


class TestHotLoopRng:
    def test_flags_rng_in_hot_loop(self, make_tree, run_lint):
        root = make_tree({"repro/accel/engine.py": (
            "import numpy as np\n"
            "def f(seeds):\n"
            "    out = []\n"
            "    for s in seeds:\n"
            "        out.append(np.random.default_rng(s).integers(4))\n"
            "    return out\n"
        )})
        assert len(ids(run_lint(root), "REPRO-RNG003")) == 1

    def test_cell_seed_derivation_is_sanctioned(self, make_tree, run_lint):
        root = make_tree({"repro/core/stacked.py": (
            "import numpy as np\n"
            "def _cell_seed(s, t, c):\n"
            "    return s + c\n"
            "def f(seed, cells):\n"
            "    out = []\n"
            "    for t, c in cells:\n"
            "        out.append(np.random.default_rng(_cell_seed(seed, t, c)))\n"
            "    return out\n"
        )})
        assert ids(run_lint(root), "REPRO-RNG003") == []

    def test_out_of_scope_module_not_flagged(self, make_tree, run_lint):
        root = make_tree({"repro/analysis/x.py": (
            "import numpy as np\n"
            "def f(seeds):\n"
            "    return [np.random.default_rng(s) for s in seeds\n"
            "            for _ in range(2)]\n"
        )})
        assert ids(run_lint(root), "REPRO-RNG003") == []

    def test_hoisted_rng_clean(self, make_tree, run_lint):
        root = make_tree({"repro/accel/engine.py": (
            "import numpy as np\n"
            "def f(seed, n):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    for _ in range(n):\n"
            "        rng.integers(4)\n"
        )})
        assert ids(run_lint(root), "REPRO-RNG003") == []


class TestClockDiscipline:
    def test_flags_direct_calls(self, make_tree, run_lint):
        root = make_tree({"repro/core/sched.py": (
            "import time\n"
            "from datetime import datetime\n"
            "def now():\n"
            "    return time.monotonic(), time.time(), datetime.now()\n"
        )})
        found = ids(run_lint(root), "REPRO-CLK001")
        assert len(found) == 3
        assert all(f.line == 4 for f in found)

    def test_injection_idioms_allowed(self, make_tree, run_lint):
        root = make_tree({"repro/core/sched.py": (
            "import time\n"
            "from typing import Callable\n"
            "_monotonic = time.monotonic\n"
            "def lease(clock: Callable[[], float] = time.monotonic):\n"
            "    return _monotonic() + clock()\n"
            "def backoff(s):\n"
            "    time.sleep(s)\n"
        )})
        assert ids(run_lint(root), "REPRO-CLK001") == []

    def test_from_import_alias_flagged(self, make_tree, run_lint):
        root = make_tree({"repro/defense/monitor.py": (
            "from time import monotonic as mono\n"
            "def f():\n"
            "    return mono()\n"
        )})
        assert len(ids(run_lint(root), "REPRO-CLK001")) == 1

    def test_out_of_scope_module_allowed(self, make_tree, run_lint):
        # bench.py legitimately reads perf_counter; it is not in scope
        root = make_tree({"repro/bench.py": (
            "import time\n"
            "def f():\n"
            "    return time.perf_counter()\n"
        )})
        assert ids(run_lint(root), "REPRO-CLK001") == []


class TestDurableWrite:
    def test_flags_bare_open_modes(self, make_tree, run_lint):
        root = make_tree({"repro/core/ckpt.py": (
            "def save(p, q, r, text):\n"
            "    with open(p, 'w') as h:\n"
            "        h.write(text)\n"
            "    open(q, mode='a').write(text)\n"
            "    open(r, 'xb').write(b'')\n"
        )})
        found = ids(run_lint(root), "REPRO-DUR001")
        assert [f.line for f in found] == [2, 4, 5]
        assert "non-atomic" in found[0].message

    def test_flags_path_write_text(self, make_tree, run_lint):
        root = make_tree({"repro/zoo.py": (
            "from pathlib import Path\n"
            "def save(p, text):\n"
            "    Path(p).write_text(text)\n"
        )})
        assert len(ids(run_lint(root), "REPRO-DUR001")) == 1

    def test_reads_and_fdopen_clean(self, make_tree, run_lint):
        root = make_tree({"repro/core/ckpt.py": (
            "import os, tempfile\n"
            "def load(p):\n"
            "    with open(p) as h:\n"
            "        return h.read()\n"
            "def atomic(p, text):\n"
            "    fd, tmp = tempfile.mkstemp()\n"
            "    with os.fdopen(fd, 'w') as h:\n"
            "        h.write(text)\n"
            "    os.replace(tmp, p)\n"
        )})
        assert ids(run_lint(root), "REPRO-DUR001") == []

    def test_out_of_scope_module_allowed(self, make_tree, run_lint):
        root = make_tree({"repro/analysis/report.py": (
            "def save(p, text):\n"
            "    open(p, 'w').write(text)\n"
        )})
        assert ids(run_lint(root), "REPRO-DUR001") == []


class TestBareExcept:
    def test_flags_bare_except(self, make_tree, run_lint):
        root = make_tree({"repro/x.py": (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except:\n"
            "        return 2\n"
        )})
        assert len(ids(run_lint(root), "REPRO-EXC001")) == 1

    def test_typed_except_clean(self, make_tree, run_lint):
        root = make_tree({"repro/x.py": (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:\n"
            "        return 2\n"
        )})
        assert ids(run_lint(root), "REPRO-EXC001") == []


class TestRaiseDiscipline:
    def test_flags_stdlib_raise(self, make_tree, run_lint):
        root = make_tree({"repro/x.py": (
            "def f(v):\n"
            "    raise ValueError(v)\n"
        )})
        found = ids(run_lint(root), "REPRO-EXC002")
        assert len(found) == 1 and "ValueError" in found[0].message

    def test_repro_error_family_discovered_across_files(self, make_tree,
                                                        run_lint):
        root = make_tree({
            "repro/errors.py": (
                "class ReproError(Exception):\n"
                "    pass\n"
                "class ConfigError(ReproError):\n"
                "    pass\n"
            ),
            "repro/core/remote.py": (
                "from ..errors import ReproError\n"
                "class FrameError(ReproError):\n"
                "    pass\n"
                "def f():\n"
                "    raise FrameError('bad frame')\n"
            ),
            "repro/x.py": (
                "from .errors import ConfigError\n"
                "def g():\n"
                "    raise ConfigError('nope')\n"
            ),
        })
        assert ids(run_lint(root), "REPRO-EXC002") == []

    def test_locally_handled_raise_allowed(self, make_tree, run_lint):
        root = make_tree({"repro/core/cache.py": (
            "def load(p):\n"
            "    try:\n"
            "        if p is None:\n"
            "            raise ValueError('integrity')\n"
            "        return p\n"
            "    except (ValueError, KeyError):\n"
            "        return None\n"
        )})
        assert ids(run_lint(root), "REPRO-EXC002") == []

    def test_try_does_not_guard_nested_def(self, make_tree, run_lint):
        root = make_tree({"repro/x.py": (
            "def f():\n"
            "    try:\n"
            "        def g():\n"
            "            raise ValueError('escapes at call time')\n"
            "        return g\n"
            "    except ValueError:\n"
            "        return None\n"
        )})
        assert len(ids(run_lint(root), "REPRO-EXC002")) == 1

    def test_process_control_and_reraise_allowed(self, make_tree, run_lint):
        root = make_tree({"repro/cli.py": (
            "def f(bad):\n"
            "    if bad:\n"
            "        raise SystemExit('usage')\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception as exc:\n"
            "        raise\n"
            "def g():\n"
            "    raise NotImplementedError\n"
        )})
        assert ids(run_lint(root), "REPRO-EXC002") == []


WIRE_COMMON = {
    "repro/config.py": (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class ClockConfig:\n"
        "    rate_hz: float = 1.0\n"
        "@dataclass(frozen=True)\n"
        "class SimulationConfig:\n"
        "    clock: ClockConfig = None\n"
        "    seed: int = 0\n"
    ),
}


class TestWireCompleteness:
    def test_clean_recipe(self, make_tree, run_lint):
        root = make_tree(dict(WIRE_COMMON, **{"repro/core/executor.py": (
            "from dataclasses import dataclass\n"
            "from ..config import SimulationConfig\n"
            "@dataclass(frozen=True)\n"
            "class WorkerRecipe:\n"
            "    victim_name: str = 'lenet5'\n"
            "    bank_cells: int = 5500\n"
            "    config: SimulationConfig = None\n"
        )}))
        assert ids(run_lint(root), "REPRO-WIRE001") == []

    def test_optional_wrapped_dataclass_flagged(self, make_tree, run_lint):
        root = make_tree(dict(WIRE_COMMON, **{"repro/core/executor.py": (
            "from dataclasses import dataclass\n"
            "from typing import Optional\n"
            "from ..config import ClockConfig\n"
            "@dataclass(frozen=True)\n"
            "class WorkerRecipe:\n"
            "    clock: Optional[ClockConfig] = None\n"
        )}))
        found = ids(run_lint(root), "REPRO-WIRE001")
        assert len(found) == 1
        assert "raw dict" in found[0].message

    def test_top_level_tuple_of_atoms_passes(self, make_tree, run_lint):
        # The codec restores top-level tuple-typed fields (list ->
        # tuple), so Tuple[...] of JSON atoms is wire-safe — this is
        # the shape of DefenseGridSpec.input_shape.
        root = make_tree({"repro/core/executor.py": (
            "from dataclasses import dataclass\n"
            "from typing import Tuple\n"
            "@dataclass(frozen=True)\n"
            "class WorkerRecipe:\n"
            "    window: Tuple[int, int] = (0, 0)\n"
            "    shape: Tuple[int, ...] = (1, 28, 28)\n"
        )})
        assert ids(run_lint(root), "REPRO-WIRE001") == []

    def test_nested_tuple_field_flagged(self, make_tree, run_lint):
        # Inside Optional/containers the codec's tuple branch never
        # fires (the hint origin is Union/list), so the value stays a
        # list — still a wire hazard.
        root = make_tree({"repro/core/executor.py": (
            "from dataclasses import dataclass\n"
            "from typing import List, Optional, Tuple\n"
            "@dataclass(frozen=True)\n"
            "class WorkerRecipe:\n"
            "    window: Optional[Tuple[int, int]] = None\n"
            "    spans: List[Tuple[int, int]] = None\n"
            "    loose: tuple = ()\n"
        )})
        found = ids(run_lint(root), "REPRO-WIRE001")
        assert len(found) == 3
        assert all("tuple" in f.message for f in found)

    def test_non_json_leaf_flagged_transitively(self, make_tree, run_lint):
        root = make_tree({"repro/core/executor.py": (
            "from dataclasses import dataclass\n"
            "import numpy as np\n"
            "@dataclass(frozen=True)\n"
            "class Inner:\n"
            "    arr: np.ndarray = None\n"
            "@dataclass(frozen=True)\n"
            "class WorkerRecipe:\n"
            "    inner: Inner = None\n"
        )})
        found = ids(run_lint(root), "REPRO-WIRE001")
        assert len(found) == 1 and "Inner.arr" in found[0].message

    def test_missing_root_is_a_finding(self, make_tree, run_lint):
        root = make_tree({"repro/core/executor.py": (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class SomethingElse:\n"
            "    x: int = 0\n"
        )})
        found = ids(run_lint(root), "REPRO-WIRE001")
        assert len(found) == 1 and "WorkerRecipe" in found[0].message


class TestBackendPurity:
    def test_flags_direct_optional_backend_imports(self, make_tree,
                                                   run_lint):
        root = make_tree({"repro/accel/engine.py": (
            "import cupy\n"
            "from jax import numpy as jnp\n"
        )})
        found = ids(run_lint(root), "REPRO-XP001")
        assert [f.line for f in found] == [1, 2]

    def test_shim_itself_allowed(self, make_tree, run_lint):
        root = make_tree({"repro/accel/xp.py": (
            "def _cupy_backend():\n"
            "    import cupy\n"
            "    return cupy\n"
        )})
        assert ids(run_lint(root), "REPRO-XP001") == []

    def test_numpy_stays_legal(self, make_tree, run_lint):
        root = make_tree({"repro/core/stacked.py": (
            "import numpy as np\n"
            "from numpy import random\n"
        )})
        assert ids(run_lint(root), "REPRO-XP001") == []


class TestEngineMechanics:
    def test_inline_ignore_suppresses_matching_rule(self, make_tree,
                                                    run_lint):
        root = make_tree({"repro/core/x.py": (
            "import time\n"
            "def f():\n"
            "    return time.time()  # lint: ignore[REPRO-CLK001]\n"
            "def g():\n"
            "    return time.time()  # lint: ignore[REPRO-DUR001]\n"
            "def h():\n"
            "    return time.time()  # lint: ignore\n"
        )})
        found = ids(run_lint(root), "REPRO-CLK001")
        assert [f.line for f in found] == [5]

    def test_syntax_error_raises_lint_error(self, make_tree):
        from repro.errors import LintError
        root = make_tree({"repro/x.py": "def broken(:\n"})
        with pytest.raises(LintError, match="cannot parse"):
            lint_paths([root], [ClockDisciplineRule()])

    def test_missing_path_raises_lint_error(self, tmp_path):
        from repro.errors import LintError
        with pytest.raises(LintError, match="does not exist"):
            lint_paths([tmp_path / "nope"], [ClockDisciplineRule()])

    def test_findings_sorted_and_file_count(self, make_tree):
        root = make_tree({
            "repro/core/b.py": "import time\nx = time.time()\n",
            "repro/core/a.py": "import time\ny = time.time()\n",
        })
        report = lint_paths([root], [ClockDisciplineRule()])
        assert report.files_checked == 2
        assert [f.path for f in report.findings] == \
            ["repro/core/a.py", "repro/core/b.py"]

    def test_every_rule_has_contract_docs(self):
        from repro.lint.rules import ALL_RULES
        seen = set()
        for cls in ALL_RULES:
            assert cls.rule_id.startswith("REPRO-")
            assert cls.rule_id not in seen
            seen.add(cls.rule_id)
            assert cls.contract and cls.hint and cls.title
