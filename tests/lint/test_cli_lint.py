"""`repro lint` CLI: exit codes, baseline workflow, rule selection,
and output formats."""

from __future__ import annotations

import json

from repro.cli import main

CLEAN = {
    "repro/zoo.py": (
        "def add(a, b):\n"
        "    return a + b\n"
    ),
}

DIRTY = {
    "repro/zoo.py": (
        "def save(path, payload):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write(payload)\n"
    ),
}


class TestExitCodes:
    def test_clean_tree_strict_is_zero(self, make_tree):
        root = make_tree(CLEAN)
        assert main(["lint", str(root), "--strict", "--no-baseline"]) == 0

    def test_findings_without_strict_is_zero(self, make_tree, capsys):
        root = make_tree(DIRTY)
        assert main(["lint", str(root), "--no-baseline"]) == 0
        assert "REPRO-DUR001" in capsys.readouterr().out

    def test_findings_with_strict_is_one(self, make_tree):
        root = make_tree(DIRTY)
        assert main(["lint", str(root), "--strict", "--no-baseline"]) == 1

    def test_syntax_error_is_two(self, make_tree, capsys):
        root = make_tree({"repro/zoo.py": "def broken(:\n"})
        assert main(["lint", str(root), "--no-baseline"]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_missing_path_is_two(self, tmp_path):
        assert main(["lint", str(tmp_path / "ghost.py"),
                     "--no-baseline"]) == 2

    def test_unknown_rule_id_is_two(self, make_tree, capsys):
        root = make_tree(CLEAN)
        assert main(["lint", str(root), "--rules", "REPRO-BOGUS"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_explicit_missing_baseline_is_two(self, make_tree, tmp_path):
        root = make_tree(CLEAN)
        assert main(["lint", str(root), "--baseline",
                     str(tmp_path / "ghost.json")]) == 2


class TestBaselineWorkflow:
    def test_write_then_strict_passes(self, make_tree, tmp_path):
        root = make_tree(DIRTY)
        baseline = tmp_path / "b.json"
        assert main(["lint", str(root), "--write-baseline",
                     "--baseline", str(baseline)]) == 0
        assert baseline.exists()
        assert main(["lint", str(root), "--strict",
                     "--baseline", str(baseline)]) == 0

    def test_new_violation_escapes_baseline(self, make_tree, tmp_path):
        root = make_tree(DIRTY)
        baseline = tmp_path / "b.json"
        main(["lint", str(root), "--write-baseline",
              "--baseline", str(baseline)])
        extra = root / "repro" / "zoo.py"
        extra.write_text(extra.read_text() +
                         "\ndef save2(path, payload):\n"
                         "    open(path, 'a').write(payload)\n")
        assert main(["lint", str(root), "--strict",
                     "--baseline", str(baseline)]) == 1

    def test_stale_entries_reported(self, make_tree, tmp_path, capsys):
        root = make_tree(DIRTY)
        baseline = tmp_path / "b.json"
        main(["lint", str(root), "--write-baseline",
              "--baseline", str(baseline)])
        (root / "repro" / "zoo.py").write_text(CLEAN["repro/zoo.py"])
        assert main(["lint", str(root), "--strict",
                     "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out


class TestSelection:
    def test_rules_filter_excludes_other_rules(self, make_tree):
        root = make_tree(DIRTY)  # durability violation only
        assert main(["lint", str(root), "--strict", "--no-baseline",
                     "--rules", "REPRO-CLK001"]) == 0
        assert main(["lint", str(root), "--strict", "--no-baseline",
                     "--rules", "REPRO-DUR001"]) == 1


class TestJsonFormat:
    def test_json_output_parses(self, make_tree, capsys):
        root = make_tree(DIRTY)
        assert main(["lint", str(root), "--no-baseline",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        rules = {f["rule"] for f in payload["findings"]}
        assert "REPRO-DUR001" in rules
        finding = payload["findings"][0]
        assert {"rule", "path", "line", "message", "hint"} <= set(finding)
