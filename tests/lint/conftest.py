"""Shared fixtures for the contract-linter tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import default_rules, lint_paths


@pytest.fixture
def make_tree(tmp_path):
    """Write a fake package tree: ``make_tree({"repro/core/x.py": src})``
    returns the root directory to lint (relpaths match the real repo's,
    so rule scopes and baselines apply unchanged)."""

    def _make(files: dict) -> Path:
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        return tmp_path

    return _make


@pytest.fixture
def run_lint():
    """Lint a tree (or explicit paths) and return the finding list."""

    def _run(root, rules=None, rule=None):
        chosen = rules if rules is not None else \
            [rule] if rule is not None else default_rules()
        return lint_paths([root], chosen).findings

    return _run
