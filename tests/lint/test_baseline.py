"""Baseline machinery: content-addressed keys, count budgets, atomic
persistence, and strict load validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import LintError
from repro.lint import Baseline, BaselineEntry, default_baseline_path
from repro.lint.findings import Finding


def _finding(rule="REPRO-DUR001", path="repro/core/x.py", line=10,
             snippet='open(p, "w")'):
    return Finding(path=path, line=line, col=1, rule=rule,
                   message="m", hint="h", snippet=snippet)


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        baseline = Baseline.from_findings(
            [_finding(), _finding(line=20), _finding(rule="REPRO-EXC002")],
            reason="test grant",
        )
        target = tmp_path / "baseline.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        assert loaded.entries == baseline.entries

    def test_from_findings_collapses_identical_lines(self):
        baseline = Baseline.from_findings([_finding(), _finding(line=99)])
        assert len(baseline.entries) == 1
        assert baseline.entries[0].count == 2

    def test_save_is_durable_json(self, tmp_path):
        target = tmp_path / "baseline.json"
        Baseline.from_findings([_finding()]).save(target)
        payload = json.loads(target.read_text())
        assert payload["version"] == 1
        assert payload["entries"][0]["rule"] == "REPRO-DUR001"
        # the atomic writer leaves no temp droppings behind
        assert [p.name for p in tmp_path.iterdir()] == ["baseline.json"]


class TestMatching:
    def test_filter_new_covers_baselined_finding(self):
        baseline = Baseline.from_findings([_finding()])
        assert baseline.filter_new([_finding()]) == []

    def test_filter_new_survives_line_drift(self):
        # same (rule, path, stripped line), different line number: the
        # content-addressed key still covers it after code moves around
        baseline = Baseline.from_findings([_finding(line=10)])
        assert baseline.filter_new([_finding(line=482)]) == []

    def test_filter_new_expires_when_line_changes(self):
        baseline = Baseline.from_findings([_finding()])
        drifted = _finding(snippet='open(p, "a")')
        assert baseline.filter_new([drifted]) == [drifted]

    def test_count_budget_limits_identical_lines(self):
        baseline = Baseline.from_findings([_finding()])  # count=1
        live = [_finding(line=10), _finding(line=30)]
        fresh = baseline.filter_new(live)
        assert len(fresh) == 1

    def test_count_budget_of_two_covers_two(self):
        baseline = Baseline.from_findings([_finding(), _finding(line=30)])
        assert baseline.filter_new(
            [_finding(line=10), _finding(line=30)]) == []

    def test_stale_entry_when_violation_gone(self):
        baseline = Baseline.from_findings([_finding()])
        stale = baseline.stale_entries([])
        assert [e.key() for e in stale] == [_finding().key()]

    def test_stale_entry_when_count_shrank(self):
        baseline = Baseline.from_findings([_finding(), _finding(line=30)])
        assert len(baseline.stale_entries([_finding()])) == 1
        assert baseline.stale_entries(
            [_finding(), _finding(line=30)]) == []

    def test_rules_present(self):
        baseline = Baseline.from_findings(
            [_finding(), _finding(rule="REPRO-EXC002")])
        assert baseline.rules_present() == ("REPRO-DUR001", "REPRO-EXC002")


class TestLoadValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(LintError, match="cannot read"):
            Baseline.load(tmp_path / "nope.json")

    def test_not_json(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text("not json{")
        with pytest.raises(LintError, match="not JSON"):
            Baseline.load(bad)

    def test_missing_entries_key(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text(json.dumps({"version": 1}))
        with pytest.raises(LintError, match="missing 'entries'"):
            Baseline.load(bad)

    def test_version_mismatch(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(LintError, match="version 99"):
            Baseline.load(bad)

    def test_malformed_entry(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text(json.dumps(
            {"version": 1, "entries": [{"rule": "REPRO-DUR001"}]}))
        with pytest.raises(LintError, match="malformed entry"):
            Baseline.load(bad)


class TestDefaultPath:
    def test_finds_committed_baseline_from_package(self):
        found = default_baseline_path()
        assert found.name == "lint_baseline.json"
        assert found.exists()

    def test_walks_up_to_nearest(self, tmp_path):
        (tmp_path / "lint_baseline.json").write_text("{}")
        deep = tmp_path / "a" / "b"
        deep.mkdir(parents=True)
        assert default_baseline_path(deep) == \
            tmp_path / "lint_baseline.json"
