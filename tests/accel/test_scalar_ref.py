"""Cross-validation: vectorized fault injector vs live DSP48 array."""

import numpy as np
import pytest

from repro.accel import AcceleratorEngine, StruckCycles
from repro.accel.scalar_ref import run_conv_layer_scalar
from repro.config import default_config
from repro.dsp import TimingFaultModel
from repro.sensors import GateDelayModel


@pytest.fixture(scope="module")
def small_conv(probe_engine_module):
    """The probe model's 1x1 conv: 12,544 MACs — scalar-tractable."""
    engine = probe_engine_module
    stage = engine.model.stage("conv1x1")
    plan = engine.schedule.window("conv1x1").plan
    return engine, stage, plan


@pytest.fixture(scope="module")
def probe_engine_module():
    from repro.accel import AcceleratorEngine
    from repro.nn import build_probe_model, quantize_model
    from repro.nn.model import PROBE_INPUT_SHAPE

    return AcceleratorEngine(quantize_model(build_probe_model()),
                             rng=np.random.default_rng(500),
                             input_shape=PROBE_INPUT_SHAPE)


@pytest.fixture(scope="module")
def probe_input(small_conv):
    """Activation codes arriving at the conv1x1 stage."""
    engine, stage, plan = small_conv
    rng = np.random.default_rng(7)
    image = rng.uniform(0, 1, size=(1,) + engine.input_shape)
    codes = engine.model.quantize_input(image)
    for s in engine.model.stages:
        if s.name == "conv1x1":
            break
        codes = s.forward_codes(codes)
    return codes[0]  # single image (C, H, W)


class TestCleanEquivalence:
    def test_scalar_matches_functional_model(self, small_conv, probe_input):
        _, stage, plan = small_conv
        result = run_conv_layer_scalar(stage, probe_input, plan.lanes,
                                       voltage=lambda c: 1.0,
                                       rng=np.random.default_rng(1))
        expected = stage.forward_codes(probe_input[None, ...])[0]
        np.testing.assert_array_equal(result.acc, expected)
        assert result.faults == 0
        assert result.cycles == plan.cycles

    def test_voltage_array_form(self, small_conv, probe_input):
        _, stage, plan = small_conv
        volts = np.full(plan.cycles, 1.0)
        result = run_conv_layer_scalar(stage, probe_input, plan.lanes,
                                       voltage=volts,
                                       rng=np.random.default_rng(2))
        assert result.faults == 0


class TestFaultRateAgreement:
    def test_scalar_fault_rate_matches_model(self, small_conv, probe_input,
                                             config):
        """Scalar per-op fault occurrence must track the analytic rate
        (within the transition-eligibility discount)."""
        _, stage, plan = small_conv
        volts = 0.93
        result = run_conv_layer_scalar(stage, probe_input, plan.lanes,
                                       voltage=lambda c: volts,
                                       rng=np.random.default_rng(3))
        fm = TimingFaultModel(config.dsp, GateDelayModel(config.delay),
                              np.random.default_rng(4))
        p = fm.fault_probability(volts)
        total_ops = plan.ops
        rate = result.faults / total_ops
        # Eligibility (repeated products cannot fault) discounts the
        # analytic rate; it must stay within [0.3p, 1.05p].
        assert 0.3 * p <= rate <= 1.05 * p

    def test_corruption_extent_matches_vectorized(self, small_conv,
                                                  probe_input,
                                                  probe_engine_module):
        """Fraction of corrupted output pixels: scalar array vs the
        vectorized injector, same voltage, all cycles struck."""
        engine, stage, plan = small_conv
        volts = 0.93

        scalar = run_conv_layer_scalar(stage, probe_input, plan.lanes,
                                       voltage=lambda c: volts,
                                       rng=np.random.default_rng(5))
        clean = stage.forward_codes(probe_input[None, ...])[0]
        scalar_frac = (scalar.acc != clean).mean()

        # Vectorized: strike every cycle of conv1x1 on the same input.
        image_codes = probe_input[None, ...]
        acc = stage.forward_codes(image_codes)
        entry = StruckCycles(
            "conv1x1",
            np.arange(plan.cycles, dtype=np.int64),
            np.full(plan.cycles, volts),
        )
        faulted = engine._fault_conv(stage, plan, entry, image_codes,
                                     acc.copy())
        vec_frac = (faulted[0] != clean).mean()

        assert scalar_frac == pytest.approx(vec_frac, abs=0.10)
        assert scalar_frac > 0.01
