"""Differential parity across array backends and dtype policies.

The repo's correctness contract has two tiers (docs/performance.md):

* **exact bytes** — the numpy backend under the fxp dtype policy is the
  reference; explicit backend selection, stacking, caching, and worker
  counts may not move a byte (``tests/core/test_stacked_parity.py``,
  ``tests/core/test_parallel_parity.py``);
* **pinned tolerance** — the float32 fast path and non-numpy backends
  are *distribution*-identical, not stream-identical: their fault sites
  come from the sparse Poisson-thinning sampler and single-precision
  uniforms, so per-cell attacked accuracy is pinned to a small
  tolerance of the reference instead.

This suite enforces both tiers differentially, property-tests the
value-exact kernels the fast path shares with the reference (pairwise
pool max, frexp bit width, the thinning sampler's marginal law), and
unit-tests the ``repro.accel.xp`` backend shim.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import AcceleratorEngine
from repro.accel import xp as xp_mod
from repro.accel.xp import (ArrayBackend, available_backends,
                            backend_available, get_backend)
from repro.config import default_config
from repro.core import CampaignSpec, DeepStrike, run_campaign
from repro.core.campaign import _to_json
from repro.errors import ConfigError

#: Per-cell attacked-accuracy tolerance for the fp32/alt-backend tier.
#: The RNG streams differ by design; the distributions do not.  Worst
#: observed delta on the full fig5b grid is 0.05; a broken injector is
#: off by 0.3+.
ACCURACY_TOL = 0.08

#: A fault-dense sub-grid (weak 40/80-strike cells never flip a
#: prediction and would vacuously pass any tolerance).
DIFF_SPEC = CampaignSpec(sweeps=(("conv1", (1000, 1800)),
                                 ("conv2", (1500, 4500)),
                                 ("fc1", (1500, 4500))),
                         eval_images=96, seed=5)


@pytest.fixture(scope="module")
def victim():
    from repro.zoo import get_pretrained

    return get_pretrained()


def make_engine(victim, dtype="fxp", backend="numpy", seed=66):
    config = dataclasses.replace(default_config(), backend=backend,
                                 dtype_policy=dtype)
    return AcceleratorEngine(victim.quantized, config=config,
                             rng=np.random.default_rng(seed))


def campaign_json(victim, dtype="fxp", backend="numpy", stacked=False):
    attack = DeepStrike(make_engine(victim, dtype, backend),
                        rng=np.random.default_rng(77))
    result = run_campaign(attack, victim.dataset.test_images,
                          victim.dataset.test_labels, DIFF_SPEC,
                          stacked=stacked)
    return _to_json(result, complete=True)


def cell_accuracies(json_text):
    import json

    payload = json.loads(json_text)
    return {(s["target_layer"], o["n_strikes"]): o["attacked_accuracy"]
            for s in payload["sweeps"] for o in s["outcomes"]}


# ---------------------------------------------------------------------------
# Tier 1: the explicit numpy backend is the reference, exactly.
# ---------------------------------------------------------------------------


class TestExactTier:
    def test_explicit_numpy_backend_is_byte_identical(self, victim):
        """backend='numpy' spelled out is the same engine as the
        default: selection through the shim moves no bytes."""
        assert campaign_json(victim, backend="numpy") == \
            campaign_json(victim)

    def test_fxp_policy_is_deterministic(self, victim):
        assert campaign_json(victim) == campaign_json(victim)


# ---------------------------------------------------------------------------
# Tier 2: fp32 (and any alternate backend) within pinned tolerance.
# ---------------------------------------------------------------------------


class TestToleranceTier:
    def test_clean_pass_is_value_exact(self, victim):
        """No randomness in the clean pass, and every intermediate code
        is an integer below 2**24 — float32 holds it exactly, so the
        clean tier owes exactness, not tolerance."""
        e_ref = make_engine(victim)
        e_f32 = make_engine(victim, dtype="fp32")
        images = victim.dataset.test_images[:64]
        ref_stages = e_ref.clean_stage_codes(images)
        f32_stages = e_f32.clean_stage_codes(images)
        assert len(ref_stages) == len(f32_stages)
        for ref, f32 in zip(ref_stages, f32_stages):
            assert f32.dtype == np.float32
            np.testing.assert_array_equal(
                np.asarray(ref, dtype=np.float64),
                np.asarray(f32, dtype=np.float64))
        np.testing.assert_array_equal(e_ref.infer_clean(images),
                                      e_f32.infer_clean(images))

    @pytest.mark.parametrize("stacked", [False, True])
    def test_fp32_attacked_accuracy_within_tolerance(self, victim,
                                                     stacked):
        ref = cell_accuracies(campaign_json(victim))
        f32 = cell_accuracies(campaign_json(victim, dtype="fp32",
                                            stacked=stacked))
        assert set(ref) == set(f32)
        worst = max(abs(ref[cell] - f32[cell]) for cell in ref)
        assert worst <= ACCURACY_TOL, \
            f"fp32 attacked accuracy off by {worst:.4f} (tol " \
            f"{ACCURACY_TOL}) — the fast path drifted from the reference"

    def test_fp32_attack_actually_lands_faults(self, victim):
        """Guard against the vacuous-pass failure mode: the diff spec
        must drive attacked accuracy measurably below clean for both
        policies, or the tolerance above is comparing clean runs."""
        for dtype in ("fxp", "fp32"):
            accs = cell_accuracies(campaign_json(victim, dtype=dtype))
            assert min(accs.values()) < 0.95

    @pytest.mark.parametrize("backend", ["cupy", "jax"])
    def test_alternate_backend_within_tolerance(self, victim, backend):
        if not backend_available(backend):
            pytest.skip(f"{backend} not installed")
        ref = cell_accuracies(campaign_json(victim))
        alt = cell_accuracies(campaign_json(victim, dtype="fp32",
                                            backend=backend,
                                            stacked=True))
        worst = max(abs(ref[cell] - alt[cell]) for cell in ref)
        assert worst <= ACCURACY_TOL


# ---------------------------------------------------------------------------
# Value-exact kernels shared by both policies (property tests).
# ---------------------------------------------------------------------------


class TestSharedKernels:
    @given(seed=st.integers(0, 2**32 - 1),
           n=st.integers(1, 3), c=st.integers(1, 4),
           hw=st.integers(1, 6), k=st.integers(2, 3),
           dtype=st.sampled_from(["int64", "float32"]))
    @settings(max_examples=40, deadline=None)
    def test_pairwise_pool_max_matches_axis_reduce(self, seed, n, c, hw,
                                                   k, dtype):
        """QPool's unrolled pairwise maximum is element-identical to the
        strided axis reduction it replaced, for both policy dtypes."""
        from repro.nn.quantize import QPool

        rng = np.random.default_rng(seed)
        x = rng.integers(-128, 128, size=(n, c, hw * k, hw * k))
        x = x.astype(dtype)
        got = QPool(name="p", kernel=k).forward_codes(x)
        want = x.reshape(n, c, hw, k, hw, k).max(axis=(3, 5))
        assert got.dtype == x.dtype
        np.testing.assert_array_equal(got, want)

    @given(word=st.integers(1, 2**18 - 1))
    @settings(max_examples=200, deadline=None)
    def test_frexp_float32_width_is_exact_bit_length(self, word):
        """The injector derives toggled-bit width via float32 frexp;
        the exponent is exact for every integer below 2**24, and fault
        words top out at 18 bits."""
        width = int(np.frexp(np.float32(word))[1])
        assert width == word.bit_length()


# ---------------------------------------------------------------------------
# The sparse Poisson-thinning sampler's marginal law.
# ---------------------------------------------------------------------------


class TestSparseSampler:
    def _sample(self, victim, pf_cycles, counts, n_images, seed):
        """Drive _sparse_candidates with a synthetic exposure record
        (cycle probabilities pre-seeded under a sentinel model key)."""
        engine = make_engine(victim, dtype="fp32", seed=seed)
        counts = np.asarray(counts, dtype=np.int64)
        n_ops = int(counts.sum())
        model = object()  # any hashable key; probs are pre-cached
        pf = np.asarray(pf_cycles, dtype=np.float64)
        record = {"ops": np.arange(n_ops), "counts": counts,
                  "cycle_probs": {model: (pf, np.zeros_like(pf))},
                  "probs": {}}
        img, pos = engine._sparse_candidates(record, model, n_images)
        return img, pos, n_ops

    def test_sites_sorted_unique_in_bounds(self, victim):
        img, pos, n_ops = self._sample(
            victim, [0.3, 0.05, 0.8], [40, 25, 15], n_images=50, seed=9)
        flat = img.astype(np.int64) * n_ops + pos
        assert np.all(np.diff(flat) > 0)  # row-major sorted, deduped
        assert img.min() >= 0 and img.max() < 50
        assert pos.min() >= 0 and pos.max() < n_ops

    def test_saturated_cycle_marks_every_site(self, victim):
        img, pos, _ = self._sample(
            victim, [1.0], [30], n_images=20, seed=9)
        assert img.size == 20 * 30  # every (image, op) pair, exactly

    def test_marginal_rate_matches_bernoulli_reference(self, victim):
        """Poisson thinning must mark each site with probability exactly
        p — the same marginal law as the dense ``u < p`` reference.
        Block sizes of 10k+ sites put 5 sigma well under 2% absolute."""
        counts = [60, 60, 60]
        probs = [0.07, 0.35, 0.9]
        n_images = 400
        img, pos, n_ops = self._sample(victim, probs, counts, n_images,
                                       seed=123)
        edges = np.cumsum([0] + counts)
        for (lo, hi), p in zip(zip(edges, edges[1:]), probs):
            hits = int(((pos >= lo) & (pos < hi)).sum())
            trials = (hi - lo) * n_images
            sigma = (p * (1 - p) / trials) ** 0.5
            assert abs(hits / trials - p) < 5 * sigma + 1e-9, \
                f"cycle p={p}: marked {hits / trials:.4f} of sites"


# ---------------------------------------------------------------------------
# The xp shim itself.
# ---------------------------------------------------------------------------


class TestBackendShim:
    def test_numpy_backend_is_identity_bridge(self):
        backend = get_backend("numpy")
        assert backend.name == "numpy"
        assert backend.xp is np
        arr = np.arange(4)
        assert backend.asarray(arr) is arr
        assert backend.asnumpy(arr) is arr
        assert repr(backend) == "ArrayBackend('numpy')"

    def test_default_is_numpy(self):
        assert get_backend() is get_backend("numpy")

    def test_builtins_are_registered(self):
        names = available_backends()
        for name in ("numpy", "cupy", "jax"):
            assert name in names

    def test_unknown_backend_is_a_typo_error(self):
        with pytest.raises(ConfigError, match="unknown array backend"):
            get_backend("numpyy")
        assert not backend_available("numpyy")

    def test_uninstalled_backend_names_the_package(self):
        """On hosts without cupy, requesting it must raise the
        actionable not-installed message, not ImportError."""
        for name in ("cupy", "jax"):
            if backend_available(name):
                continue
            with pytest.raises(ConfigError, match="not installed"):
                get_backend(name)
            return
        pytest.skip("both optional backends installed here")

    def test_entry_point_backend_resolves(self, monkeypatch):
        custom = ArrayBackend(name="testxp", xp=np, asarray=np.asarray,
                              asnumpy=np.asarray)
        monkeypatch.setattr(xp_mod, "_entry_point_loaders",
                            lambda: {"testxp": lambda: custom})
        monkeypatch.delitem(xp_mod._CACHE, "testxp", raising=False)
        assert "testxp" in available_backends()
        assert get_backend("testxp") is custom
        monkeypatch.delitem(xp_mod._CACHE, "testxp", raising=False)

    def test_bad_entry_point_loader_is_rejected(self, monkeypatch):
        monkeypatch.setattr(xp_mod, "_entry_point_loaders",
                            lambda: {"badxp": lambda: object()})
        monkeypatch.delitem(xp_mod._CACHE, "badxp", raising=False)
        with pytest.raises(ConfigError, match="expected ArrayBackend"):
            get_backend("badxp")

    def test_resolution_is_cached(self):
        assert get_backend("numpy") is get_backend("numpy")
