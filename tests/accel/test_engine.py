"""Fault-aware engine tests, including scalar-DSP cross-validation."""

import numpy as np
import pytest

from repro.accel import AcceleratorEngine, StruckCycles
from repro.dsp import DSP48Slice, FaultType, TimingFaultModel
from repro.errors import ConfigError
from repro.sensors import GateDelayModel


def strikes(layer, cycles, volts):
    cycles = np.asarray(cycles, dtype=np.int64)
    return StruckCycles(layer, cycles, np.full(cycles.shape, volts))


class TestCleanPath:
    def test_matches_quantized_model(self, lenet_engine, victim):
        images = victim.dataset.test_images[:16]
        np.testing.assert_allclose(
            lenet_engine.infer_clean(images),
            victim.quantized.forward(images),
        )

    def test_attack_with_no_strikes_is_clean(self, lenet_engine, victim):
        images = victim.dataset.test_images[:8]
        out = lenet_engine.infer_under_attack(images, [])
        np.testing.assert_allclose(out, lenet_engine.infer_clean(images))

    def test_strikes_at_nominal_voltage_harmless(self, lenet_engine, victim):
        images = victim.dataset.test_images[:8]
        plan = lenet_engine.schedule.window("conv2").plan
        sc = strikes("conv2", np.arange(0, plan.cycles, 7), 1.0)
        out = lenet_engine.infer_under_attack(images, [sc])
        np.testing.assert_allclose(out, lenet_engine.infer_clean(images))


class TestInjection:
    def test_deep_strikes_corrupt_conv_outputs(self, lenet_engine, victim):
        images = victim.dataset.test_images[:8]
        plan = lenet_engine.schedule.window("conv2").plan
        sc = strikes("conv2", np.arange(0, plan.cycles, 3), 0.90)
        out = lenet_engine.infer_under_attack(images, [sc])
        clean = lenet_engine.infer_clean(images)
        assert not np.allclose(out, clean)

    def test_deep_strikes_flip_predictions(self, lenet_engine, victim):
        images = victim.dataset.test_images[:32]
        labels = victim.dataset.test_labels[:32]
        plan = lenet_engine.schedule.window("conv2").plan
        sc = strikes("conv2", np.arange(plan.cycles), 0.90)
        acc = lenet_engine.accuracy_under_attack(images, labels, [sc])
        clean = (lenet_engine.predict_clean(images) == labels).mean()
        assert acc < clean - 0.3

    def test_pool_strikes_mostly_harmless(self, lenet_engine, victim):
        """LUT-fabric pooling has huge slack: same droop, no damage."""
        images = victim.dataset.test_images[:32]
        labels = victim.dataset.test_labels[:32]
        plan = lenet_engine.schedule.window("pool1").plan
        sc = strikes("pool1", np.arange(plan.cycles), 0.93)
        acc = lenet_engine.accuracy_under_attack(images, labels, [sc])
        clean = (lenet_engine.predict_clean(images) == labels).mean()
        assert acc >= clean - 0.05

    def test_duplication_faults_absorbed_in_fc(self, lenet_engine, victim):
        """Paper Section IV-A: duplication faults are 'absorbed by more
        serial summations' in FC layers — forcing every fault to the
        duplication class must leave FC1 essentially unharmed, while the
        same fault count in the random class does real damage."""
        images = victim.dataset.test_images[:48]
        labels = victim.dataset.test_labels[:48]
        clean = (lenet_engine.predict_clean(images) == labels).mean()
        plan = lenet_engine.schedule.window("fc1").plan
        cycles = np.linspace(0, plan.cycles - 1, 3000).astype(int)
        volts = np.full(3000, 0.935)
        dup = StruckCycles("fc1", cycles, volts, force_class="duplication")
        rnd = StruckCycles("fc1", cycles, volts, force_class="random")
        dup_acc = lenet_engine.accuracy_under_attack(images, labels, [dup])
        rnd_acc = lenet_engine.accuracy_under_attack(images, labels, [rnd])
        assert clean - dup_acc <= 0.05
        assert rnd_acc < dup_acc - 0.1

    def test_conv_damage_driven_by_random_faults(self, lenet_engine, victim):
        """Paper Section IV-A: conv damage comes from random faults."""
        images = victim.dataset.test_images[:48]
        labels = victim.dataset.test_labels[:48]
        plan = lenet_engine.schedule.window("conv2").plan
        cycles = np.linspace(0, plan.cycles - 1, 2000).astype(int)
        volts = np.full(2000, 0.94)
        dup = StruckCycles("conv2", cycles, volts, force_class="duplication")
        rnd = StruckCycles("conv2", cycles, volts, force_class="random")
        dup_acc = lenet_engine.accuracy_under_attack(images, labels, [dup])
        rnd_acc = lenet_engine.accuracy_under_attack(images, labels, [rnd])
        assert rnd_acc < dup_acc - 0.1

    def test_forced_class_validation(self):
        with pytest.raises(ConfigError):
            StruckCycles("fc1", np.array([1]), np.array([0.9]),
                         force_class="weird")

    def test_multiple_layers_struck_together(self, lenet_engine, victim):
        """One plan can hit several layers (as blind plans do)."""
        images = victim.dataset.test_images[:16]
        conv1 = lenet_engine.schedule.window("conv1").plan
        conv2 = lenet_engine.schedule.window("conv2").plan
        struck = [
            strikes("conv1", np.arange(0, conv1.cycles, 2), 0.94),
            strikes("conv2", np.arange(0, conv2.cycles, 2), 0.94),
        ]
        both = lenet_engine.infer_under_attack(images, struck)
        only_conv2 = lenet_engine.infer_under_attack(images, struck[1:])
        clean = lenet_engine.infer_clean(images)
        # Striking both corrupts at least as many outputs as one layer.
        assert (both != clean).sum() >= (only_conv2 != clean).sum() * 0.5
        assert not np.allclose(both, clean)

    def test_pool_faults_under_extreme_droop(self, lenet_engine, victim):
        """The pool path does fault eventually — at droop far beyond any
        realizable strike, exercising the dup/random pixel branches."""
        images = victim.dataset.test_images[:6]
        plan = lenet_engine.schedule.window("pool1").plan
        sc = strikes("pool1", np.arange(plan.cycles), 0.70)
        out = lenet_engine.infer_under_attack(images, [sc])
        clean = lenet_engine.infer_clean(images)
        assert not np.allclose(out, clean)

    def test_pool_fault_values_stay_in_activation_range(self, lenet_engine,
                                                        victim):
        images = victim.dataset.test_images[:4]
        codes = victim.quantized.quantize_input(images)
        pool_stage = victim.quantized.stage("pool1")
        # Run the injector directly on the pool output codes.
        conv1 = victim.quantized.stage("conv1")
        tanh1 = victim.quantized.stages[1]
        x = tanh1.forward_codes(conv1.forward_codes(codes))
        pooled = pool_stage.forward_codes(x)
        plan = lenet_engine.schedule.window("pool1").plan
        sc = strikes("pool1", np.arange(plan.cycles), 0.70)
        faulted = lenet_engine._fault_pool(plan, sc, pooled.copy())
        fmt = victim.quantized.act_format
        assert faulted.min() >= fmt.int_min
        assert faulted.max() <= fmt.int_max

    def test_unknown_layer_rejected(self, lenet_engine, victim):
        images = victim.dataset.test_images[:2]
        with pytest.raises(ConfigError):
            lenet_engine.infer_under_attack(
                images, [strikes("conv9", [0], 0.9)]
            )

    def test_duplicate_layer_entries_rejected(self, lenet_engine, victim):
        images = victim.dataset.test_images[:2]
        with pytest.raises(ConfigError):
            lenet_engine.infer_under_attack(
                images,
                [strikes("conv2", [0], 0.9), strikes("conv2", [1], 0.9)],
            )

    def test_cycle_out_of_layer_rejected(self, lenet_engine, victim):
        images = victim.dataset.test_images[:2]
        plan = lenet_engine.schedule.window("conv2").plan
        with pytest.raises(ConfigError):
            lenet_engine.infer_under_attack(
                images, [strikes("conv2", [plan.cycles], 0.9)]
            )

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ConfigError):
            StruckCycles("conv2", np.array([1, 2]), np.array([0.9]))

    def test_outcomes_vary_per_image(self, lenet_engine, victim):
        """Fault sampling must be independent across inferences."""
        image = victim.dataset.test_images[:1]
        batch = np.repeat(image, 12, axis=0)
        plan = lenet_engine.schedule.window("conv2").plan
        sc = strikes("conv2", np.arange(0, plan.cycles, 11), 0.935)
        out = lenet_engine.infer_under_attack(batch, [sc])
        assert len({tuple(np.round(row, 6)) for row in out}) > 1


class TestExposedOps:
    """Unit contract of the vectorized exposure enumeration."""

    @staticmethod
    def _toy_plan():
        # ops=10, lanes=4 -> 3 cycles with a partial (2-op) final cycle.
        from repro.accel.mapper import LayerPlan

        return LayerPlan(name="toy", kind="dense", stage_index=0,
                         in_shape=(5,), out_shape=(2,), ops=10, lanes=4)

    def test_empty_cycle_set_yields_empty_arrays(self, lenet_engine):
        entry = StruckCycles("toy", np.empty(0, dtype=np.int64),
                             np.empty(0))
        ops, volts = lenet_engine._exposed_ops(self._toy_plan(), entry)
        assert ops.shape == (0,) and ops.dtype == np.int64
        assert volts.shape == (0,) and volts.dtype == np.float64

    def test_matches_ops_at_cycle_reference(self, lenet_engine):
        plan = self._toy_plan()
        # Repeated and out-of-order cycles, including the partial final
        # one: order and multiplicity must match the per-cycle reference.
        cycles = np.array([2, 0, 2, 1])
        entry = StruckCycles("toy", cycles,
                             np.array([0.90, 0.91, 0.92, 0.93]))
        ops, volts = lenet_engine._exposed_ops(plan, entry)
        ref_ops, ref_volts = [], []
        for c, v in zip(cycles, entry.voltages):
            start, end = plan.ops_at_cycle(int(c))
            ref_ops.extend(range(start, end))
            ref_volts.extend([v] * (end - start))
        np.testing.assert_array_equal(ops, ref_ops)
        np.testing.assert_array_equal(volts, ref_volts)

    def test_out_of_range_cycle_rejected(self, lenet_engine):
        entry = StruckCycles("toy", np.array([0, 3]), np.array([0.9, 0.9]))
        with pytest.raises(ConfigError, match=r"cycle 3 outside \[0, 3\)"):
            lenet_engine._exposed_ops(self._toy_plan(), entry)

    def test_negative_cycle_rejected(self, lenet_engine):
        entry = StruckCycles("toy", np.array([-1]), np.array([0.9]))
        with pytest.raises(ConfigError, match="outside"):
            lenet_engine._exposed_ops(self._toy_plan(), entry)


class TestScalarCrossValidation:
    """The vectorized injector and the scalar DSP pipeline share one fault
    model; their fault *rates* on identical op streams must agree."""

    def test_fault_rate_agreement_on_dense_stream(self, config):
        rng = np.random.default_rng(123)
        delay_model = GateDelayModel(config.delay)
        volts = 0.93

        # Scalar path: stream random products through a DSP48 pipeline.
        fm_scalar = TimingFaultModel(config.dsp, delay_model,
                                     np.random.default_rng(1))
        dsp = DSP48Slice(config.dsp, fm_scalar)
        trials = 3000
        ops = rng.integers(-100, 100, size=(trials + dsp.depth, 3))
        faults = 0
        outs = []
        for a, b, d in ops:
            outs.append(dsp.clock(int(a), int(b), int(d), voltage=volts))
        expected = [DSP48Slice.compute(int(a), int(b), int(d))
                    for a, b, d in ops]
        wrong = sum(
            1 for k, out in enumerate(outs[dsp.depth:trials + dsp.depth])
            if out.value != expected[k]
        )
        scalar_rate = wrong / trials

        # Vectorized path: same voltage, same fault model.
        fm_vec = TimingFaultModel(config.dsp, delay_model,
                                  np.random.default_rng(2))
        outcomes = fm_vec.decide_array(np.full(trials, volts))
        vec_rate = np.count_nonzero(outcomes != FaultType.NONE) / trials

        assert scalar_rate == pytest.approx(vec_rate, abs=0.04)
