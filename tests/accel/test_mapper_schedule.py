"""Mapper and schedule tests — the paper's layer timing facts."""

import pytest

from repro.accel import AcceleratorSchedule, map_model, propagate_shapes
from repro.config import default_config
from repro.errors import ConfigError
from repro.nn.model import PROBE_INPUT_SHAPE


class TestMapper:
    def test_lenet_plan_ops(self, victim, config):
        plans = {p.name: p for p in map_model(victim.quantized, config.accel)}
        assert plans["conv1"].ops == 117_600
        assert plans["conv2"].ops == 240_000
        assert plans["fc1"].ops == 192_000
        assert plans["fc2"].ops == 1_200
        assert plans["pool1"].ops == 1_176

    def test_shapes_propagate(self, victim):
        shapes = propagate_shapes(victim.quantized)
        assert (16, 10, 10) in shapes
        assert shapes[-1] == (10,)

    def test_conv2_larger_and_longer_than_conv1(self, victim, config):
        """Paper: 'CONV2 is larger than CONV1 and takes longer to execute'."""
        plans = {p.name: p for p in map_model(victim.quantized, config.accel)}
        assert plans["conv2"].ops > plans["conv1"].ops
        assert plans["conv2"].cycles > plans["conv1"].cycles

    def test_fc1_takes_longest(self, victim, config):
        """Paper: 'FC1 takes the longest time to execute' (serial adds)."""
        plans = map_model(victim.quantized, config.accel)
        longest = max(plans, key=lambda p: p.cycles)
        assert longest.name == "fc1"

    def test_ops_at_cycle_ranges(self, victim, config):
        plans = {p.name: p for p in map_model(victim.quantized, config.accel)}
        conv2 = plans["conv2"]
        assert conv2.ops_at_cycle(0) == (0, 32)
        start, end = conv2.ops_at_cycle(conv2.cycles - 1)
        assert end == conv2.ops
        with pytest.raises(ConfigError):
            conv2.ops_at_cycle(conv2.cycles)

    def test_probe_model_maps(self, probe_quantized, config):
        plans = map_model(probe_quantized, config.accel, PROBE_INPUT_SHAPE)
        assert [p.kind for p in plans] == ["pool", "conv", "conv"]


class TestSchedule:
    def test_layers_separated_by_stalls(self, lenet_engine, config):
        windows = lenet_engine.schedule.windows()
        stall = config.accel.interlayer_stall_cycles
        assert windows[0].start_cycle == stall
        for a, b in zip(windows, windows[1:]):
            assert b.start_cycle - a.end_cycle == stall

    def test_layer_at_resolution(self, lenet_engine):
        sched = lenet_engine.schedule
        conv2 = sched.window("conv2")
        assert sched.layer_at(conv2.start_cycle).plan.name == "conv2"
        assert sched.layer_at(conv2.end_cycle) is None  # stall after

    def test_layer_at_out_of_range(self, lenet_engine):
        with pytest.raises(ConfigError):
            lenet_engine.schedule.layer_at(-1)
        with pytest.raises(ConfigError):
            lenet_engine.schedule.layer_at(lenet_engine.schedule.total_cycles)

    def test_ops_at_absolute_cycle(self, lenet_engine):
        sched = lenet_engine.schedule
        conv1 = sched.window("conv1")
        window, (start, end) = sched.ops_at(conv1.start_cycle + 3)
        assert window.plan.name == "conv1"
        assert (start, end) == (96, 128)

    def test_stall_cycle_has_no_ops(self, lenet_engine):
        window, (start, end) = lenet_engine.schedule.ops_at(0)
        assert window is None and start == end

    def test_durations(self, lenet_engine, config):
        durations = lenet_engine.schedule.durations_s(
            config.clock.victim_frequency_hz
        )
        assert durations["conv2"] == pytest.approx(75e-6)

    def test_unknown_layer_rejected(self, lenet_engine):
        with pytest.raises(ConfigError):
            lenet_engine.schedule.window("conv9")

    def test_summary_lists_layers(self, lenet_engine):
        text = lenet_engine.schedule.summary()
        for name in ("conv1", "pool1", "conv2", "fc1", "fc2"):
            assert name in text
