"""Accelerator activity (side-channel source) tests."""

import numpy as np
import pytest

from repro.accel import inference_current_trace, layer_current
from repro.accel.activity import STALL_CURRENT
from repro.accel.tenant import VictimAccelerator
from repro.errors import ConfigError


class TestLayerCurrent:
    def test_conv_draws_most(self, lenet_engine, config):
        by_name = {w.plan.name: layer_current(w, config.accel)
                   for w in lenet_engine.schedule.windows()}
        assert by_name["conv2"] > by_name["fc1"]
        assert by_name["conv2"] > by_name["pool1"]
        assert min(by_name.values()) > STALL_CURRENT

    def test_conv_visibility_over_stall(self, lenet_engine, config):
        """Conv activity must droop several TDC counts (Fig 1b contrast)."""
        conv = layer_current(lenet_engine.schedule.window("conv2"),
                             config.accel)
        r_total = (config.pdn.r_prompt + config.pdn.r_resonant
                   + config.pdn.r_static)
        droop_counts = conv * r_total * 500  # ~500 counts/V sensitivity
        assert droop_counts > 3


class TestInferenceTrace:
    def test_length_and_tick_expansion(self, lenet_engine, config):
        trace = inference_current_trace(lenet_engine.schedule, config.accel,
                                        config.clock, rng=None)
        expected = lenet_engine.schedule.total_cycles \
            * config.clock.ticks_per_victim_cycle
        assert trace.shape == (expected,)

    def test_stalls_at_floor(self, lenet_engine, config):
        trace = inference_current_trace(lenet_engine.schedule, config.accel,
                                        config.clock, rng=None)
        assert trace[0] == pytest.approx(STALL_CURRENT)
        assert trace[-1] == pytest.approx(STALL_CURRENT)

    def test_layer_windows_hot(self, lenet_engine, config):
        trace = inference_current_trace(lenet_engine.schedule, config.accel,
                                        config.clock, rng=None)
        tpc = config.clock.ticks_per_victim_cycle
        conv2 = lenet_engine.schedule.window("conv2")
        segment = trace[conv2.start_cycle * tpc:conv2.end_cycle * tpc]
        assert segment.min() > 10 * STALL_CURRENT

    def test_jitter_modulates(self, lenet_engine, config):
        trace = inference_current_trace(lenet_engine.schedule, config.accel,
                                        config.clock,
                                        rng=np.random.default_rng(0))
        tpc = config.clock.ticks_per_victim_cycle
        conv2 = lenet_engine.schedule.window("conv2")
        segment = trace[conv2.start_cycle * tpc:conv2.end_cycle * tpc]
        assert segment.std() > 0

    def test_multiple_images(self, probe_engine, config):
        single = inference_current_trace(probe_engine.schedule, config.accel,
                                         config.clock, rng=None, images=1)
        double = inference_current_trace(probe_engine.schedule, config.accel,
                                         config.clock, rng=None, images=2)
        assert double.shape[0] > 2 * single.shape[0] - 1

    def test_zero_images_rejected(self, probe_engine, config):
        with pytest.raises(ConfigError):
            inference_current_trace(probe_engine.schedule, config.accel,
                                    config.clock, images=0)


class TestVictimTenant:
    def test_periodic_inference(self, probe_engine):
        tenant = VictimAccelerator(probe_engine)
        period = tenant.inference_period_cycles
        tpc = probe_engine.config.clock.ticks_per_victim_cycle
        assert tenant.cycle_of_tick(0) == 0
        assert tenant.cycle_of_tick(period * tpc) == 0  # wrapped

    def test_draws_by_schedule(self, probe_engine):
        tenant = VictimAccelerator(probe_engine)
        tpc = probe_engine.config.clock.ticks_per_victim_cycle
        conv = probe_engine.schedule.window("conv3x3")
        hot = tenant.current_draw(conv.start_cycle * tpc)
        cold = tenant.current_draw(0)  # initial stall
        assert hot > 10 * cold

    def test_budget_claims_dsps_and_bram(self, lenet_engine):
        tenant = VictimAccelerator(lenet_engine)
        assert tenant.budget.dsp_slices == 32
        assert tenant.budget.bram_36k >= 40  # ~196k 8-bit params
