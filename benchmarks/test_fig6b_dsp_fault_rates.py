"""E4 / Fig 6(b): DSP fault rates versus striker-bank size.

10,000 random-input DSP operations per bank size, one-cycle strikes.
Expected shape: duplication faults appear first and peak mid-range;
random faults take over at deep droop; the total rate is controllable
and approaches 100% at 24,000 cells.
"""

import numpy as np

from conftest import once
from repro.analysis import fixed_table, monotone_fraction
from repro.dsp import FaultCharacterization

CELL_COUNTS = [4000, 6000, 8000, 10000, 12000, 16000, 20000, 24000]


def test_fig6b_dsp_fault_rates(benchmark):
    harness = FaultCharacterization(seed=2021)
    sweep = once(
        benchmark,
        lambda: harness.sweep(CELL_COUNTS, trials=10_000),
    )

    rows = [
        [r.n_cells, round(harness.strike_voltage(r.n_cells), 4),
         round(r.duplication_rate, 3), round(r.random_rate, 3),
         round(r.total_rate, 3)]
        for r in sweep
    ]
    print("\nE4 / Fig 6(b) — DSP fault rates vs striker cells:")
    print(fixed_table(["cells", "v_strike", "dup", "random", "total"], rows))

    by_cells = {r.n_cells: r for r in sweep}
    # Small banks are harmless; the paper's 'total ~100% at 24,000 cells'.
    assert by_cells[4000].total_rate < 0.02
    assert by_cells[24000].total_rate > 0.90
    # Total rate is a controllable, monotone dose-response.
    totals = [r.total_rate for r in sweep]
    assert monotone_fraction(totals, decreasing=False) == 1.0
    # Duplication faults lead at shallow droop...
    assert by_cells[8000].duplication_rate > by_cells[8000].random_rate
    # ...random faults dominate at deep droop...
    assert by_cells[24000].random_rate > by_cells[24000].duplication_rate
    # ...and duplication rises then falls (an interior peak).
    dups = [r.duplication_rate for r in sweep]
    peak = int(np.argmax(dups))
    assert 0 < peak < len(dups) - 1
