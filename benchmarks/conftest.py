"""Shared fixtures for the experiment benches.

Each bench regenerates one of the paper's figures (see the experiment
index in DESIGN.md), prints the same rows/series the paper reports, and
asserts the *shape* of the result — who wins, roughly by what factor,
where the crossovers fall — rather than absolute numbers, since the
substrate is a simulator, not the authors' PYNQ-Z1.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import default_config


@pytest.fixture(scope="session")
def config():
    return default_config()


@pytest.fixture(scope="session")
def victim():
    from repro.zoo import get_pretrained

    return get_pretrained()


@pytest.fixture(scope="session")
def lenet_engine(victim, config):
    from repro.accel import AcceleratorEngine

    return AcceleratorEngine(victim.quantized, config=config,
                             rng=np.random.default_rng(2021))


@pytest.fixture(scope="session")
def probe_engine(config):
    from repro.accel import AcceleratorEngine
    from repro.nn import build_probe_model, quantize_model
    from repro.nn.model import PROBE_INPUT_SHAPE

    return AcceleratorEngine(quantize_model(build_probe_model()),
                             config=config,
                             rng=np.random.default_rng(1021),
                             input_shape=PROBE_INPUT_SHAPE)


@pytest.fixture(scope="session")
def eval_set(victim):
    """The accuracy-evaluation subset used by the attack benches."""
    return (victim.dataset.test_images[:120],
            victim.dataset.test_labels[:120])


def once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
