"""Engine hot-path throughput with committed regression floors.

Runs :func:`repro.bench.bench_engine` (per-layer injection throughput,
PDN ticks/sec, single campaign-cell latency) and compares it against
the floors committed in ``BENCH_engine.json`` at the repo root: a code
change that silently slows the injection path below 25% of the recorded
throughput (or inflates cell latency past 4x) fails CI.

The file is then rewritten with the fresh measurements; the floors
themselves are sticky — they are only derived (measured * 0.25) when
absent, so a fast host does not ratchet them out of reach of a slow
one.
"""

import json
from pathlib import Path

from repro.bench import bench_engine, derive_floors
from repro.core.campaign import _atomic_write_text

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def test_engine_hotpath_throughput():
    payload = bench_engine()

    committed = {}
    if BENCH_PATH.exists():
        committed = json.loads(BENCH_PATH.read_text())
    floors = committed.get("floors") or derive_floors(payload)

    print(f"\nengine hot path (floors from "
          f"{'committed file' if committed.get('floors') else 'this run'}):")
    for name, row in payload["injection"].items():
        floor = floors["injection_ops_per_sec"].get(name)
        print(f"  {name:6s} {row['ops_per_sec'] / 1e6:8.2f} Mops/s  "
              f"(floor {0 if floor is None else floor / 1e6:.2f})")
        if floor is not None:
            assert row["ops_per_sec"] >= floor, \
                f"{name} injection throughput {row['ops_per_sec']:.0f} " \
                f"ops/s under the committed floor {floor:.0f}"
    pdn = payload["pdn"]
    print(f"  pdn    {pdn['ticks_per_sec'] / 1e6:8.2f} Mticks/s "
          f"(floor {floors['pdn_ticks_per_sec'] / 1e6:.2f})")
    assert pdn["ticks_per_sec"] >= floors["pdn_ticks_per_sec"], \
        f"PDN simulate {pdn['ticks_per_sec']:.0f} ticks/s under the " \
        f"committed floor {floors['pdn_ticks_per_sec']:.0f}"
    cell = payload["cell"]
    print(f"  cell   {cell['seconds']:8.3f} s       "
          f"(ceiling {floors['cell_seconds_max']:.3f})")
    assert cell["seconds"] <= floors["cell_seconds_max"], \
        f"campaign cell took {cell['seconds']:.3f}s, past the committed " \
        f"ceiling {floors['cell_seconds_max']:.3f}s"

    payload["floors"] = floors
    _atomic_write_text(BENCH_PATH, json.dumps(payload, indent=2) + "\n")
