"""Campaign throughput: serial versus process-parallel execution.

Times the Fig 5(b) default campaign spec and writes
``BENCH_campaign.json`` at the repo root — one entry in the
benchmark-regression trajectory.  The top-level ``serial_cells_per_sec``
is the portable headline number every host records.

The parallel leg only runs on hosts with >= 4 CPUs (the CI runner):
there it must produce byte-identical campaign JSON to the serial run
(the throughput number can never be bought with a correctness
regression) and clear a 2x speedup floor, and the file gains a
``speedup`` field.  On smaller boxes a workers-4 "comparison" would
just time process thrash, so the bench records honest serial numbers
and skips.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import CampaignSpec, DeepStrike, run_campaign
from repro.core.campaign import _atomic_write_text, _to_json

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_campaign.json"
PARALLEL_WORKERS = 4


def fresh_attack(victim):
    from repro.accel import AcceleratorEngine

    engine = AcceleratorEngine(victim.quantized,
                               rng=np.random.default_rng(66))
    return DeepStrike(engine, rng=np.random.default_rng(77))


def timed_run(victim, spec, workers):
    attack = fresh_attack(victim)
    start = time.perf_counter()
    result = run_campaign(attack, victim.dataset.test_images,
                          victim.dataset.test_labels, spec, workers=workers)
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_campaign_throughput(victim):
    spec = CampaignSpec.fig5b_default()
    n_cells = len(spec.cells())
    host_cpus = os.cpu_count() or 1
    parallel_capable = host_cpus >= PARALLEL_WORKERS

    serial, t_serial = timed_run(victim, spec, workers=1)
    serial_cps = n_cells / t_serial

    payload = {
        "bench": "campaign-throughput",
        "spec": "fig5b_default",
        "cells": n_cells,
        "eval_images": spec.eval_images,
        "cpu_count": host_cpus,
        "serial_cells_per_sec": round(serial_cps, 3),
        "workers": {
            "1": {"seconds": round(t_serial, 3),
                  "cells_per_sec": round(serial_cps, 3)},
        },
    }
    print(f"\ncampaign throughput ({n_cells} cells, "
          f"{spec.eval_images} images/cell, {host_cpus} CPUs):")
    print(f"  workers=1: {t_serial:6.2f}s  ({serial_cps:.2f} cells/s)")

    speedup = None
    if parallel_capable:
        parallel, t_parallel = timed_run(victim, spec,
                                         workers=PARALLEL_WORKERS)
        # Differential guard: speed must not change a single byte.
        assert _to_json(parallel, complete=True) == _to_json(serial,
                                                             complete=True)
        parallel_cps = n_cells / t_parallel
        speedup = parallel_cps / serial_cps
        payload["workers"][str(PARALLEL_WORKERS)] = {
            "seconds": round(t_parallel, 3),
            "cells_per_sec": round(parallel_cps, 3),
        }
        payload["speedup"] = round(speedup, 3)
        print(f"  workers={PARALLEL_WORKERS}: {t_parallel:6.2f}s  "
              f"({parallel_cps:.2f} cells/s)  speedup {speedup:.2f}x")

    _atomic_write_text(BENCH_PATH, json.dumps(payload, indent=2) + "\n")

    if parallel_capable:
        assert speedup >= 2.0, \
            f"parallel campaign only {speedup:.2f}x on a " \
            f"{host_cpus}-core host (floor: 2x)"
    else:
        pytest.skip(f"only {host_cpus} CPU(s): recorded serial throughput "
                    "without the parallel comparison")
