"""Campaign throughput: serial, process-parallel, and stacked execution.

Times the Fig 5(b) default campaign spec and writes
``BENCH_campaign.json`` at the repo root — one entry in the
benchmark-regression trajectory.  The top-level ``serial_cells_per_sec``
is the portable headline number every host records.

Three legs:

* **serial vs stacked (full spec, fxp)** — the stacked path must
  produce byte-identical campaign JSON to the serial run (a throughput
  number can never be bought with a correctness regression);
* **sweep columns per mode** — :func:`repro.bench.bench_campaign_modes`
  times the fig5b sweep columns through each (mode, backend, dtype)
  execution mode with identical best-of-N, overhead-subtracted
  methodology, and the stacked fp32 fast path must clear
  ``STACKED_SPEEDUP_TARGET`` x the committed serial reference floor
  (scaled down on hosts measurably slower than the reference, so a
  loaded CI box degrades the target rather than flaking the assert);
* **parallel (>= 4 CPUs only)** — byte-identical and >= 2x, as before.

Floors are *sticky*: the first measurement on a host writes
``floors`` at :data:`repro.bench.FLOOR_FRACTION` of measured, and
later runs keep the committed value — a regression must clear the
floor that history recorded, not the one it just lowered.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import FLOOR_FRACTION, bench_campaign_modes
from repro.core import CampaignSpec, DeepStrike, run_campaign
from repro.core.campaign import _atomic_write_text, _to_json

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_campaign.json"
PARALLEL_WORKERS = 4

#: The committed serial full-fig5b reference throughput (cells/s) the
#: stacked path is measured against.  Frozen on the reference host; the
#: sweep-column acceptance below scales it by measured host speed.
REFERENCE_SERIAL_FLOOR = 9.257
#: What the *sweep-column serial* leg measures on the reference host —
#: the host-speed proxy for the acceptance below, measured in the same
#: bench window as the fast mode so load moves both together.
REFERENCE_SWEEP_SERIAL = 10.5
STACKED_SPEEDUP_TARGET = 3.0
#: The gather-heavy fp32 leg is bimodal on small hosts (~25% swing with
#: steady serial legs in the same window — TLB/hugepage layout luck, not
#: load), so the *assert* allows this much below target while the
#: committed BENCH_campaign.json records the full-speed measurement.
NOISE_ALLOWANCE = 0.85
#: The mode the speedup acceptance pins (the fp32 fast path).
FAST_MODE = "stacked-numpy-fp32"


def fresh_attack(victim):
    from repro.accel import AcceleratorEngine

    engine = AcceleratorEngine(victim.quantized,
                               rng=np.random.default_rng(66))
    return DeepStrike(engine, rng=np.random.default_rng(77))


def timed_run(victim, spec, workers=1, stacked=False):
    attack = fresh_attack(victim)
    start = time.perf_counter()
    result = run_campaign(attack, victim.dataset.test_images,
                          victim.dataset.test_labels, spec,
                          workers=workers, stacked=stacked)
    elapsed = time.perf_counter() - start
    return result, elapsed


def sticky_floors(payload):
    """Merge committed floors over freshly derived ones (committed win).

    Modes skipped this run (absent cupy/jax backends) derive no fresh
    floor, but their *committed* floor is carried forward — a
    numpy-only host must never erase the floor a GPU host recorded.
    """
    modes = payload["sweep_columns"]["modes"]
    fresh = {
        "serial_cells_per_sec": round(
            payload["serial_cells_per_sec"] * FLOOR_FRACTION, 3),
        "sweep_columns": {
            mode: round(row["cells_per_sec"] * FLOOR_FRACTION, 3)
            for mode, row in modes.items()
            if row.get("status", "measured") == "measured"
        },
    }
    try:
        committed = json.loads(BENCH_PATH.read_text()).get("floors", {})
    except (OSError, ValueError):
        committed = {}
    if "serial_cells_per_sec" in committed:
        fresh["serial_cells_per_sec"] = committed["serial_cells_per_sec"]
    fresh["sweep_columns"].update({
        mode: floor
        for mode, floor in committed.get("sweep_columns", {}).items()
        if mode in modes
    })
    return fresh


def test_campaign_throughput(victim):
    spec = CampaignSpec.fig5b_default()
    n_cells = len(spec.cells())
    host_cpus = os.cpu_count() or 1
    parallel_capable = host_cpus >= PARALLEL_WORKERS

    serial, t_serial = timed_run(victim, spec)
    serial_cps = n_cells / t_serial
    serial_json = _to_json(serial, complete=True)

    # Differential guard: the stacked path may not change a single byte
    # of the full fig5b campaign under the default fxp policy.
    stacked, t_stacked = timed_run(victim, spec, stacked=True)
    assert _to_json(stacked, complete=True) == serial_json
    stacked_cps = n_cells / t_stacked

    sweep = bench_campaign_modes(repeats=6)

    payload = {
        "bench": "campaign-throughput",
        "spec": "fig5b_default",
        "cells": n_cells,
        "eval_images": spec.eval_images,
        "cpu_count": host_cpus,
        "serial_cells_per_sec": round(serial_cps, 3),
        "stacked_cells_per_sec": round(stacked_cps, 3),
        "workers": {
            "1": {"seconds": round(t_serial, 3),
                  "cells_per_sec": round(serial_cps, 3)},
        },
        "sweep_columns": sweep,
        "reference": {
            "serial_floor_cells_per_sec": REFERENCE_SERIAL_FLOOR,
            "stacked_speedup_target": STACKED_SPEEDUP_TARGET,
        },
    }
    print(f"\ncampaign throughput ({n_cells} cells, "
          f"{spec.eval_images} images/cell, {host_cpus} CPUs):")
    print(f"  serial : {t_serial:6.2f}s  ({serial_cps:.2f} cells/s)")
    print(f"  stacked: {t_stacked:6.2f}s  ({stacked_cps:.2f} cells/s)")
    for mode, row in sweep["modes"].items():
        if row.get("status") == "skipped":
            print(f"  sweep {mode}: skipped ({row.get('reason')})")
            continue
        print(f"  sweep {mode}: {row['cells_per_sec']:.2f} cells/s "
              f"({row['column_seconds']:.3f}s columns)")

    speedup = None
    if parallel_capable:
        parallel, t_parallel = timed_run(victim, spec,
                                         workers=PARALLEL_WORKERS)
        assert _to_json(parallel, complete=True) == serial_json
        parallel_cps = n_cells / t_parallel
        speedup = parallel_cps / serial_cps
        payload["workers"][str(PARALLEL_WORKERS)] = {
            "seconds": round(t_parallel, 3),
            "cells_per_sec": round(parallel_cps, 3),
        }
        payload["speedup"] = round(speedup, 3)
        print(f"  workers={PARALLEL_WORKERS}: {t_parallel:6.2f}s  "
              f"({parallel_cps:.2f} cells/s)  speedup {speedup:.2f}x")

    payload["floors"] = sticky_floors(payload)
    _atomic_write_text(BENCH_PATH, json.dumps(payload, indent=2) + "\n")

    # Sticky regression floors (measured modes only; skipped modes keep
    # their committed floor in the file for hosts that can run them).
    assert serial_cps >= payload["floors"]["serial_cells_per_sec"]
    for mode, floor in payload["floors"]["sweep_columns"].items():
        row = sweep["modes"].get(mode)
        if not row or row.get("status", "measured") != "measured":
            continue
        cps = row["cells_per_sec"]
        assert cps >= floor, f"{mode}: {cps:.2f} cells/s under its " \
                             f"committed floor {floor:.2f}"

    # The tentpole acceptance: stacked fp32 sweep columns >= 3x the
    # committed serial reference.  On a host measurably slower than the
    # reference (the same-window serial sweep leg below its committed
    # reference), the target scales with the measured slowdown instead
    # of flaking.
    serial_sweep_cps = sweep["modes"]["serial-numpy-fxp"]["cells_per_sec"]
    host_scale = min(1.0, serial_sweep_cps / REFERENCE_SWEEP_SERIAL)
    target = (STACKED_SPEEDUP_TARGET * REFERENCE_SERIAL_FLOOR
              * host_scale * NOISE_ALLOWANCE)
    fast = sweep["modes"][FAST_MODE]["cells_per_sec"]
    assert fast >= target, \
        f"{FAST_MODE} sweep columns at {fast:.2f} cells/s, need " \
        f"{target:.2f} ({STACKED_SPEEDUP_TARGET}x reference, host " \
        f"scale {host_scale:.2f}, allowance {NOISE_ALLOWANCE})"

    if not parallel_capable:
        pytest.skip(f"only {host_cpus} CPU(s): recorded serial/stacked "
                    "throughput without the parallel comparison")
