"""E3 / Fig 5(b): per-layer accuracy versus number of power strikes.

The paper's end-to-end case study: target each LeNet-5 layer with a
TDC-guided strike train and measure testing accuracy, plus the unguided
(random-timing) baseline.  Expected shape: accuracy falls as strikes
increase; CONV2 shows the largest maximum drop (paper: -14% at 4500
strikes); pooling is nearly immune; the blind baseline is far weaker
than the guided attack at equal intensity.
"""

import numpy as np
import pytest

from conftest import once
from repro.analysis import fixed_table, monotone_fraction, series_auc
from repro.core import BlindAttack, DeepStrike
from repro.core.evaluation import LayerSweepResult, sweep_to_rows

#: (layer, strike counts) — maxima scale with layer execution length, as
#: in the paper ("due to the different execution length of different
#: layers, the maximum number of strikes on different layer also
#: varies"): conv2 runs ~7500 cycles and takes up to 4500 strikes (60%
#: duty), conv1 runs ~3675 and proportionally takes up to ~2200.
SWEEPS = [
    ("conv1", [500, 1000, 1500, 1800]),
    ("conv2", [500, 1500, 3000, 4500]),
    ("fc1", [500, 1500, 3000, 4500]),
    ("pool1", [40, 90, 140]),
]
BLIND_COUNTS = [1500, 4500]


@pytest.fixture(scope="module")
def fig5b_data(lenet_engine, eval_set):
    images, labels = eval_set
    attack = DeepStrike(lenet_engine, rng=np.random.default_rng(6))
    blind = BlindAttack(lenet_engine, rng=np.random.default_rng(7))

    results = []
    for layer, counts in SWEEPS:
        sweep = LayerSweepResult(layer)
        for count in counts:
            plan = attack.plan_for_layer(layer, count)
            sweep.outcomes.append(attack.execute(images, labels, plan))
        results.append(sweep)
    blind_sweep = LayerSweepResult("blind")
    for count in BLIND_COUNTS:
        plan = blind.plan_random(count)
        blind_sweep.outcomes.append(blind.execute(images, labels, plan))
    results.append(blind_sweep)
    return results


def test_fig5b_accuracy_vs_strikes(benchmark, fig5b_data, eval_set):
    results = once(benchmark, lambda: fig5b_data)
    clean = results[0].outcomes[0].clean_accuracy

    print(f"\nE3 / Fig 5(b) — accuracy vs strikes (clean {clean:.4f}):")
    print(sweep_to_rows(results))
    rows = [[r.target_layer, round(r.max_drop, 4)] for r in results]
    print(fixed_table(["target", "max drop"], rows))

    by_layer = {r.target_layer: r for r in results}

    # CONV2 is the most fault-sensitive target (paper: -14% at 4500).
    conv2_drop = by_layer["conv2"].max_drop
    assert conv2_drop == max(r.max_drop for r in results)
    assert 0.05 <= conv2_drop <= 0.45, \
        f"conv2 max drop {conv2_drop:.3f} outside the paper-like band"

    # Accuracy decreases (noisily) with strike count on the conv targets.
    assert monotone_fraction(by_layer["conv2"].accuracies) >= 0.66
    assert monotone_fraction(by_layer["conv1"].accuracies) >= 0.5

    # FC1 suffers far less than CONV2 (duplication absorption + shallow
    # activity droop), and pooling is essentially immune.
    assert by_layer["fc1"].max_drop < 0.5 * conv2_drop
    assert by_layer["pool1"].max_drop <= 0.05

    # The blind baseline is the weakest curve (paper's top curve).
    assert by_layer["blind"].max_drop < 0.5 * conv2_drop
    guided_auc = series_auc(by_layer["conv2"].strike_counts,
                            by_layer["conv2"].accuracies)
    blind_auc = series_auc(by_layer["blind"].strike_counts,
                           by_layer["blind"].accuracies)
    assert blind_auc > guided_auc
