"""E8: fault-type ablation (Section IV-A's mechanism analysis).

The paper explains the per-layer sensitivity asymmetry mechanistically:
duplication faults are "absorbed by more serial summations" in FC layers
while random faults drive convolution damage.  This bench isolates the
two classes by forcing every injected fault to one class and comparing
the accuracy damage per layer.
"""

import numpy as np

from conftest import once
from repro.accel import StruckCycles
from repro.analysis import fixed_table

N_STRIKES = 2500
VOLTS = 0.94  # fault-rich regime so class effects are visible
TARGETS = ["conv2", "fc1"]


def run_ablation(lenet_engine, eval_set):
    images, labels = eval_set
    clean = (lenet_engine.predict_clean(images) == labels).mean()
    rows = {}
    for layer in TARGETS:
        plan = lenet_engine.schedule.window(layer).plan
        cycles = np.linspace(0, plan.cycles - 1, N_STRIKES).astype(int)
        volts = np.full(N_STRIKES, VOLTS)
        rows[layer] = {}
        for klass in ("duplication", "random"):
            struck = StruckCycles(layer, cycles, volts, force_class=klass)
            rows[layer][klass] = lenet_engine.accuracy_under_attack(
                images, labels, [struck]
            )
    return clean, rows


def test_ablation_fault_types(benchmark, lenet_engine, eval_set):
    clean, rows = once(benchmark, lambda: run_ablation(lenet_engine,
                                                       eval_set))

    table = [
        [layer, round(rows[layer]["duplication"], 4),
         round(rows[layer]["random"], 4)]
        for layer in TARGETS
    ]
    print(f"\nE8 — fault-class ablation (clean {clean:.4f}, "
          f"{N_STRIKES} strikes at {VOLTS} V):")
    print(fixed_table(["target", "dup-only acc", "random-only acc"], table))

    # Duplication faults are absorbed in FC1 (near-zero damage).
    assert clean - rows["fc1"]["duplication"] <= 0.05
    # Random faults do the real damage, in both layer types.
    assert rows["fc1"]["random"] < rows["fc1"]["duplication"] - 0.05
    assert rows["conv2"]["random"] < rows["conv2"]["duplication"] - 0.05
    # Conv tolerates duplication better than random by a wide margin.
    dup_damage = clean - rows["conv2"]["duplication"]
    rnd_damage = clean - rows["conv2"]["random"]
    assert rnd_damage > 2 * max(dup_damage, 0.01)
