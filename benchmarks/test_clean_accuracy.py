"""E5: the clean victim's operating point (paper Section IV).

The paper's fixed-point LeNet-5 reaches 96.17% test accuracy on the
FPGA.  This bench reports our float and Q3.4 accuracies on the synthetic
digit task and checks the quantization loss is small.
"""

from conftest import once
from repro.analysis import fixed_table


def test_clean_accuracy(benchmark, victim):
    q_acc = once(
        benchmark,
        lambda: victim.quantized.accuracy(victim.dataset.test_images,
                                          victim.dataset.test_labels),
    )

    rows = [
        ["float32", round(victim.float_accuracy, 4)],
        ["Q3.4 (deployed)", round(q_acc, 4)],
        ["paper (on-FPGA)", 0.9617],
    ]
    print("\nE5 — clean test accuracy:")
    print(fixed_table(["model", "accuracy"], rows))

    # High-90s operating regime, like the paper's 96.17%.
    assert q_acc >= 0.95
    # Quantization to 8-bit / 3 integer bits costs little.
    assert victim.float_accuracy - q_acc < 0.02
    # Test set is balanced 10-class, so ~10x above chance.
    assert q_acc > 0.90
