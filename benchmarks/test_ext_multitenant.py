"""E10 (extension): more than two tenants on the PDN.

The paper's future work asks how the attack behaves in richer
multi-tenant settings.  Two questions, answered on the simulated stack:

1. **Does the attack still work with a noisy third tenant?**  Yes — and
   the paper's own footnote predicts the direction: other tenants'
   consumption lowers the rail further, *strengthening* the injection.
2. **Does profiling survive the noise?**  Moderate background blurs the
   signatures but the layer library (count, order, kinds) survives.
"""

import numpy as np
import pytest

from conftest import once
from repro.analysis import fixed_table
from repro.core import DeepStrike
from repro.fpga import BackgroundActivity
from repro.sensors import GateDelayModel, TDCSensor
from repro.sensors.calibration import theta_for_target

#: A moderately busy neighbour (~9 mA mean, 25 mA bursts).
BACKGROUND = BackgroundActivity(base_current=2e-3, burst_current=25e-3,
                                burst_start_prob=0.004,
                                burst_stop_prob=0.008)


@pytest.fixture(scope="module")
def attack(lenet_engine):
    return DeepStrike(lenet_engine, rng=np.random.default_rng(70))


def test_ext_attack_under_background(benchmark, attack, eval_set):
    images, labels = eval_set

    def run():
        base_plan = attack.plan_for_layer("conv2", 4500)
        noisy_plan = attack.plan_under_background(base_plan, BACKGROUND,
                                                  seed=71)
        quiet = attack.execute(images, labels, base_plan)
        noisy = attack.execute(images, labels, noisy_plan)
        return base_plan, noisy_plan, quiet, noisy

    base_plan, noisy_plan, quiet, noisy = once(benchmark, run)

    rows = [
        ["two tenants (paper setup)", f"{base_plan.mean_strike_voltage():.4f}",
         f"{quiet.attacked_accuracy:.4f}"],
        ["three tenants (busy neighbour)",
         f"{noisy_plan.mean_strike_voltage():.4f}",
         f"{noisy.attacked_accuracy:.4f}"],
    ]
    print(f"\nE10 — conv2 @4500 strikes, clean accuracy "
          f"{quiet.clean_accuracy:.4f}:")
    print(fixed_table(["environment", "strike volts", "attacked acc"], rows))

    # Background load deepens strikes (paper footnote) and the attack
    # does at least as much damage.
    assert noisy_plan.mean_strike_voltage() \
        < base_plan.mean_strike_voltage()
    assert noisy.attacked_accuracy <= quiet.attacked_accuracy + 0.02
    assert noisy.accuracy_drop >= 0.05


def test_ext_profiling_under_background(benchmark, attack, config):
    delay_model = GateDelayModel(config.delay)
    theta = theta_for_target(config.tdc, delay_model, voltage=0.9867)
    sensor = TDCSensor(config.tdc, delay_model, theta,
                       rng=np.random.default_rng(72))

    def profile_both():
        clean = attack.profile_victim(sensor, nominal_readout=92,
                                      n_traces=2)
        noisy = attack.profile_victim(sensor, nominal_readout=92,
                                      n_traces=2, background=BACKGROUND)
        return clean, noisy

    clean, noisy = once(benchmark, profile_both)

    print("\nE10 — profiled library, quiet vs busy neighbour:")
    for label, lib in (("quiet", clean), ("busy", noisy)):
        rows = [[f"#{s.order}", s.kind_guess, s.duration_ticks,
                 round(s.mean_droop, 2)] for s in lib]
        print(f"{label}:")
        print(fixed_table(["layer", "kind", "ticks", "droop"], rows))

    # The clean two-tenant profile recovers all five layers.
    assert len(clean) == 5
    # Under a busy neighbour the attack-relevant structure survives: the
    # deep-droop conv layers and the long FC layer are still recovered
    # with matching durations.  (The brief, shallow pooling layer may be
    # masked by bursts — an honest multi-tenant limitation.)
    assert len(noisy) >= 4
    clean_convs = sorted(s.duration_ticks for s in clean
                         if s.kind_guess == "conv")
    noisy_convs = sorted(s.duration_ticks for s in noisy
                         if s.kind_guess == "conv")
    assert len(noisy_convs) >= 2
    for c_dur, n_dur in zip(clean_convs[-2:], noisy_convs[-2:]):
        assert n_dur == pytest.approx(c_dur, rel=0.3)
    clean_fc = max(s.duration_ticks for s in clean)
    noisy_fc = max(s.duration_ticks for s in noisy)
    assert noisy_fc == pytest.approx(clean_fc, rel=0.15)
