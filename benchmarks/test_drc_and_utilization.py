"""E6: DRC verdicts and striker utilization (Sections III-C, IV).

The paper's structural claims: the latch-loop power striker passes
design rule checking (ring oscillators do not), and the end-to-end
striker bank consumes 15.03% of the device's logic slices.
"""

from conftest import once
from repro.analysis import fixed_table
from repro.config import default_config
from repro.fpga import DesignRuleChecker, Utilization, ZYNQ_7020
from repro.fpga.netlist import Netlist
from repro.sensors import build_ro_sensor_netlist, build_tdc_netlist
from repro.striker import StrikerBank, build_ro_cell_netlist, \
    build_striker_cell_netlist

#: The paper-sized bank: ~15% of the XC7Z020's 13,300 slices.
PAPER_BANK_CELLS = 8000


def run_drc_suite():
    config = default_config()
    drc = DesignRuleChecker()
    strict = DesignRuleChecker(strict_latch_scan=True)
    striker_bank = Netlist("striker_bank")
    for k in range(256):
        build_striker_cell_netlist(k, netlist=striker_bank)
    ro_bank = Netlist("ro_bank")
    for k in range(64):
        build_ro_cell_netlist(k, netlist=ro_bank)
    return {
        "striker (vendor DRC)": drc.check(striker_bank).passed,
        "striker (strict scan)": strict.check(striker_bank).passed,
        "ring oscillator bank": drc.check(ro_bank).passed,
        "TDC sensor": drc.check(build_tdc_netlist(config.tdc)).passed,
        "RO sensor": drc.check(build_ro_sensor_netlist()).passed,
    }


def test_drc_verdicts(benchmark):
    verdicts = once(benchmark, run_drc_suite)
    rows = [[name, "PASS" if ok else "FAIL"]
            for name, ok in verdicts.items()]
    print("\nE6 — DRC verdicts:")
    print(fixed_table(["design", "verdict"], rows))

    assert verdicts["striker (vendor DRC)"], \
        "the latch-loop striker must pass vendor DRC (the paper's point)"
    assert not verdicts["ring oscillator bank"], "ROs must be rejected"
    assert not verdicts["RO sensor"], "RO sensors must be rejected"
    assert verdicts["TDC sensor"], "the TDC is a legitimate tenant"
    assert not verdicts["striker (strict scan)"], \
        "research-grade latch scanning catches the striker"


def test_striker_utilization(benchmark, config):
    def measure():
        bank = StrikerBank(PAPER_BANK_CELLS, config, structural_cells=16)
        util = Utilization(ZYNQ_7020)
        util.claim("striker", bank.budget)
        return util.slice_fraction("striker")

    fraction = once(benchmark, measure)
    rows = [
        [f"{PAPER_BANK_CELLS}-cell bank (ours)", f"{fraction * 100:.2f}%"],
        ["paper's power striker", "15.03%"],
    ]
    print("\nE6 — striker logic-slice utilization:")
    print(fixed_table(["design", "slices"], rows))
    assert 0.14 <= fraction <= 0.16, \
        "paper-sized bank should cost ~15% of slices (paper: 15.03%)"
