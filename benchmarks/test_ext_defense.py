"""E9 (extension): defences against DeepStrike.

The paper's conclusion points at defences as future work; its own
citations supply the two candidates this bench evaluates on the full
simulated stack:

* a **runtime droop monitor** (the TDC used defensively) — detection
  rate / latency / false alarms across attack intensities, and
* an **admission-time bitstream scanner** (strict latch-loop and
  enable-fanout screening) — which rejects the striker outright.
"""

import numpy as np
import pytest

from conftest import once
from repro.analysis import fixed_table
from repro.defense import BitstreamScanner, DetectionStudy, DroopMonitor
from repro.fpga.netlist import Netlist
from repro.sensors import GateDelayModel, TDCSensor
from repro.sensors.calibration import theta_for_target
from repro.striker import build_striker_cell_netlist

INTENSITIES = [(2000, 200), (5000, 500), (5000, 1500), (8000, 1500)]


@pytest.fixture(scope="module")
def study(probe_engine, config):
    delay_model = GateDelayModel(config.delay)
    theta = theta_for_target(config.tdc, delay_model, voltage=0.9867)
    sensor = TDCSensor(config.tdc, delay_model, theta,
                       rng=np.random.default_rng(60))
    return DetectionStudy(probe_engine, sensor, seed=61)


def test_ext_droop_monitor(benchmark, study, config):
    monitor = DroopMonitor()
    results = once(
        benchmark,
        lambda: study.sweep(monitor, INTENSITIES, trials=3),
    )

    rows = [
        [r.bank_cells, r.n_strikes, f"{r.detection_rate:.2f}",
         (f"{r.mean_latency_s * 1e6:.2f} us"
          if r.mean_latency_s is not None else "-"),
         f"{r.false_alarm_rate:.2f}"]
        for r in results
    ]
    print("\nE9 — droop-monitor detection across attack intensities:")
    print(fixed_table(["cells", "strikes", "det rate", "latency",
                       "false alarms"], rows))

    # The attack-relevant intensities are always detected, with no false
    # alarms on clean traffic.
    strong = [r for r in results if r.bank_cells >= 5000]
    assert all(r.detection_rate == 1.0 for r in strong)
    assert all(r.false_alarm_rate == 0.0 for r in results)
    # Detection is fast: well inside one inference.
    inference_s = study.engine.schedule.total_cycles \
        / config.clock.victim_frequency_hz
    for r in strong:
        assert r.mean_latency_s is not None
        assert r.mean_latency_s < inference_s


def test_ext_bitstream_scanner(benchmark):
    def scan_bank():
        bank = Netlist("striker_bank")
        for k in range(128):
            build_striker_cell_netlist(k, netlist=bank)
        return BitstreamScanner().scan(bank)

    report = once(benchmark, scan_bank)
    print("\nE9 — admission-time scan of the striker bank:")
    print(report.summary())

    assert not report.admit, "the scanner must reject the striker"
    assert report.potential_oscillators >= 128
    assert report.max_latch_gate_fanout >= 256  # shared Start net
