"""E7: TDC configuration ablation (Section III-B's counting errors).

The paper warns that F_dr, L_LUT and L_CARRY "should be carefully
designed to avoid counting errors".  This bench sweeps configurations:
the paper's choice calibrates cleanly and tracks droop; delay lines too
long for the drive period cannot calibrate at all; too-short/coarse
lines lose sensitivity.
"""

import dataclasses

import numpy as np

from conftest import once
from repro.analysis import fixed_table
from repro.config import TDCConfig, default_config
from repro.errors import CalibrationError
from repro.fpga import ClockManagementTile
from repro.sensors import GateDelayModel, TDCSensor, calibrate_theta

#: (label, config, drive period)
VARIANTS = [
    ("paper: L_LUT=4, L_CARRY=128, 200MHz", TDCConfig(), 5e-9),
    ("short line: L_LUT=1", dataclasses.replace(TDCConfig(), l_lut=1), 5e-9),
    ("long line: L_LUT=8", dataclasses.replace(TDCConfig(), l_lut=8), 5e-9),
    ("way too long: L_LUT=16", dataclasses.replace(TDCConfig(), l_lut=16),
     5e-9),
    ("faster drive: 400MHz", TDCConfig(), 2.5e-9),
    ("coarse carry: 64 stages x 32ps",
     dataclasses.replace(TDCConfig(), l_carry=64,
                         carry_stage_delay_nominal=32e-12,
                         calibration_target=46), 5e-9),
]


def evaluate_variant(label, tdc_config, drive_period):
    config = default_config()
    delay_model = GateDelayModel(config.delay)
    cmt = ClockManagementTile()
    try:
        theta, nominal = calibrate_theta(
            tdc_config, delay_model, cmt, rng=np.random.default_rng(3),
            drive_period_s=drive_period,
        )
    except CalibrationError:
        return {"label": label, "calibrates": False, "sensitivity": 0.0,
                "saturates": True}
    sensor = TDCSensor(tdc_config, delay_model, theta, rng=None)
    sensitivity = sensor.sensitivity_counts_per_volt()
    deep = sensor.readout(0.90)
    return {
        "label": label,
        "calibrates": True,
        "nominal": nominal,
        "sensitivity": sensitivity,
        "saturates": bool(sensor.is_saturated(deep)),
    }


def test_ablation_tdc_config(benchmark):
    results = once(
        benchmark,
        lambda: [evaluate_variant(*v) for v in VARIANTS],
    )

    rows = [
        [r["label"], "yes" if r["calibrates"] else "NO",
         round(r["sensitivity"], 1),
         "SAT" if r["saturates"] else "ok"]
        for r in results
    ]
    print("\nE7 — TDC configuration ablation:")
    print(fixed_table(["variant", "calibrates", "counts/V", "deep droop"],
                      rows))

    by_label = {r["label"]: r for r in results}
    paper = by_label["paper: L_LUT=4, L_CARRY=128, 200MHz"]
    assert paper["calibrates"] and not paper["saturates"]
    assert paper["sensitivity"] > 300

    # Delay lines longer than the drive period cannot be phase-matched.
    assert not by_label["way too long: L_LUT=16"]["calibrates"]
    # The 400 MHz drive can't fit the 4-LUT line either (2.5 ns period).
    assert not by_label["faster drive: 400MHz"]["calibrates"]
    # A shorter LUT line costs sensitivity versus the paper's choice.
    assert by_label["short line: L_LUT=1"]["sensitivity"] \
        < paper["sensitivity"]
    # Coarser carry stages cost resolution too.
    assert by_label["coarse carry: 64 stages x 32ps"]["sensitivity"] \
        < paper["sensitivity"]
