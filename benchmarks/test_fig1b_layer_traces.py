"""E1 / Fig 1(b): TDC traces distinguish DNN layer types.

Paper setup: maxpool, conv3x3 and conv1x1 executed sequentially with the
TDC (F_dr=200 MHz, L_LUT=4, L_CARRY=128, theta calibrated to ~90) reading
the shared rail.  Expected shape: three activity regions separated by
stalls at the calibrated readout, with convolution fluctuation much
larger than max-pooling fluctuation.
"""

import numpy as np

from conftest import once
from repro.accel import inference_current_trace
from repro.accel.activity import STALL_CURRENT
from repro.analysis import fixed_table
from repro.core import SideChannelProfiler
from repro.fpga import ClockManagementTile
from repro.fpga.pdn import PowerDistributionNetwork
from repro.sensors import GateDelayModel, ReadoutTrace, TDCSensor, calibrate_theta


def collect_trace(config, probe_engine, seed=1):
    delay_model = GateDelayModel(config.delay)
    pdn_probe = PowerDistributionNetwork(config.pdn, config.clock.sim_dt,
                                         rng=None)
    idle_volts = pdn_probe.settle(STALL_CURRENT)
    theta, nominal = calibrate_theta(
        config.tdc, delay_model, ClockManagementTile(),
        idle_voltage=idle_volts, rng=np.random.default_rng(seed),
    )
    sensor = TDCSensor(config.tdc, delay_model, theta,
                       rng=np.random.default_rng(seed + 1))
    current = inference_current_trace(
        probe_engine.schedule, config.accel, config.clock,
        rng=np.random.default_rng(seed + 2),
    )
    pdn = PowerDistributionNetwork(config.pdn, config.clock.sim_dt,
                                   rng=np.random.default_rng(seed + 3))
    pdn.settle(STALL_CURRENT)
    readouts = sensor.sample_trace(pdn.simulate(current))
    return readouts, nominal


def test_fig1b_layer_traces(benchmark, config, probe_engine):
    readouts, nominal = once(
        benchmark, lambda: collect_trace(config, probe_engine)
    )

    profiler = SideChannelProfiler(nominal_readout=nominal)
    signatures = profiler.profile(readouts, dt=config.clock.sim_dt)
    trace = ReadoutTrace(readouts, dt=config.clock.sim_dt, nominal=nominal)
    segments = trace.segment(stall_band=profiler.stall_band,
                             window=profiler.smoothing_window,
                             min_activity_ticks=profiler.min_activity_ticks,
                             merge_gap_ticks=profiler.merge_gap_ticks)
    stalls = [s for s in segments if s.kind == "stall"]

    rows = [
        [f"#{s.order}", s.kind_guess, s.start_tick, s.duration_ticks,
         round(s.mean_droop, 2), round(s.fluctuation, 2)]
        for s in signatures
    ]
    print("\nE1 / Fig 1(b) — layer traces (nominal readout "
          f"{nominal}):")
    print(fixed_table(["layer", "kind", "start", "ticks", "droop",
                       "fluct"], rows))

    # Shape assertions (paper Fig 1b).
    assert len(signatures) == 3, "maxpool / conv3x3 / conv1x1 must separate"
    pool, conv3, conv1 = signatures
    # Stalls sit at the calibrated readout (~90).
    for stall in stalls:
        assert abs(stall.mean - nominal) < 1.5
    # Conv droop/fluctuation >> pool droop/fluctuation.
    assert conv3.mean_droop > 2.0 * pool.mean_droop
    assert conv1.mean_droop > 2.0 * pool.mean_droop
    # The two conv layers share their signature level; durations differ.
    assert abs(conv3.mean_droop - conv1.mean_droop) < 1.5
    assert conv3.duration_ticks > 2 * conv1.duration_ticks
    # Classification labels the conv layers correctly.
    assert conv3.kind_guess == "conv" and conv1.kind_guess == "conv"
