"""E2 / Fig 3: the DNN start detector's purified input.

The 5-zone sampler reduces the TDC capture to a 5-bit word whose Hamming
weight is flat (4) through idle wobble and drops to 3 exactly when the
first layer's droop begins — the paper's trigger condition.
"""

import numpy as np

from conftest import once
from repro.analysis import fixed_table
from repro.core import DNNStartDetector
from test_fig1b_layer_traces import collect_trace


def test_fig3_start_detector(benchmark, config, probe_engine):
    readouts, nominal = once(
        benchmark, lambda: collect_trace(config, probe_engine, seed=9)
    )
    detector = DNNStartDetector(l_carry=config.tdc.l_carry)
    hw_trace = detector.detector_input_trace(readouts)

    first_layer_tick = probe_engine.schedule.windows()[0].start_cycle \
        * config.clock.ticks_per_victim_cycle
    trigger = detector.find_trigger(readouts)

    # Print the Fig 3 view: HW levels around the first-layer start.
    window = slice(max(0, first_layer_tick - 6), first_layer_tick + 6)
    rows = [[tick, int(r), int(h)] for tick, (r, h) in enumerate(
        zip(readouts[window], hw_trace[window]), start=window.start)]
    print("\nE2 / Fig 3 — detector input around first-layer start "
          f"(tick {first_layer_tick}):")
    print(fixed_table(["tick", "readout", "HW"], rows))
    print(f"trigger tick: {trigger}")

    # Idle (pre-layer) weight is purified to 4: single-sample noise blips
    # exist, but they are rare and the debounce removes them entirely.
    idle = hw_trace[50:first_layer_tick - 4]
    assert (idle == 4).mean() > 0.9, "idle zone word must sit at HW=4"
    assert idle.min() >= 3
    # Activity drops the weight to 3 (or below during strikes).
    active = hw_trace[first_layer_tick + 4:first_layer_tick + 100]
    assert np.median(active) <= 3
    # The debounced FSM never false-triggers on idle wobble, and fires
    # within a few samples of the true layer start.
    assert trigger is not None
    latency = trigger - first_layer_tick
    assert 0 <= latency <= 24, f"trigger latency {latency} ticks too large"
