"""Defense hot-path throughput: the arms-race sweep per execution mode.

Times :func:`repro.bench.bench_defense` — the default 9-cell arms-race
grid (3 striker banks x none/recover/tmr) through every (warmth,
backend, dtype) mode — and writes ``BENCH_defense.json`` at the repo
root, a sibling of ``BENCH_campaign.json`` in the benchmark-regression
trajectory.

The headline acceptance is the tentpole's: the warm fp32 sweep must
clear ``SPEEDUP_TARGET`` x the *frozen pre-batching serial loop*
throughput (``REFERENCE_ARMS_SERIAL``, measured on the reference host
before the defended engine was vectorized).  On a host measurably
slower than the reference — the same-window cold serial leg below its
committed reference — the target scales with the measured slowdown
instead of flaking, exactly like the campaign bench.

Floors are *sticky*: the first measurement on a host writes ``floors``
at :data:`repro.bench.FLOOR_FRACTION` of measured, and later runs keep
the committed value.  Committed floors for modes *skipped this run*
(cupy/jax hosts vs CI) are carried forward, never silently dropped —
their payload rows record ``status: skipped`` instead of vanishing.
"""

import json
from pathlib import Path

from repro.bench import FLOOR_FRACTION, bench_defense
from repro.core.campaign import _atomic_write_text

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_defense.json"

#: Throughput of the pre-batching per-image serial arms-race loop on
#: the reference host (cells/s over the default 9-cell grid).  Frozen:
#: this is the denominator of the tentpole's >= 5x acceptance.
REFERENCE_ARMS_SERIAL = 2.881
#: What the *cold serial fxp* leg of this bench measures on the
#: reference host with the current code — the host-speed proxy,
#: measured in the same window as the fast mode so load moves both.
REFERENCE_COLD_SERIAL = 4.27
SPEEDUP_TARGET = 5.0
#: The gather-heavy fp32 leg is bimodal on small hosts (TLB/hugepage
#: layout luck, not load); the assert allows this much below target
#: while the committed JSON records the full-speed measurement.
NOISE_ALLOWANCE = 0.85
#: The mode the speedup acceptance pins (the fp32 fast tier on a warm
#: study — the steady-state regime of a long arms-race campaign).
FAST_MODE = "warm-numpy-fp32"


def sticky_floors(payload):
    """Merge committed floors over freshly derived ones.

    Committed values win for modes measured this run, and committed
    floors for modes *not* measured this run (skipped backends) are
    carried forward so a numpy-only CI host can never erase the floor a
    cupy host recorded.
    """
    fresh = {
        mode: round(row["cells_per_sec"] * FLOOR_FRACTION, 3)
        for mode, row in payload["modes"].items()
        if row.get("status") == "measured"
    }
    try:
        committed = json.loads(BENCH_PATH.read_text()).get("floors", {})
    except (OSError, ValueError):
        committed = {}
    merged = dict(fresh)
    merged.update({mode: floor for mode, floor in committed.items()
                   if mode in payload["modes"]})
    return merged


def test_defense_hotpath():
    payload = bench_defense(repeats=3)
    payload["bench"] = "defense-hotpath"
    payload["reference"] = {
        "arms_serial_cells_per_sec": REFERENCE_ARMS_SERIAL,
        "cold_serial_cells_per_sec": REFERENCE_COLD_SERIAL,
        "speedup_target": SPEEDUP_TARGET,
    }

    print(f"\ndefense hot path ({payload['cells']} cells, "
          f"{payload['grid']['images']} images/cell):")
    for mode, row in payload["modes"].items():
        if row.get("status") != "measured":
            print(f"  {mode}: skipped ({row.get('reason')})")
            continue
        print(f"  {mode}: {row['sweep_seconds']:6.3f}s  "
              f"({row['cells_per_sec']:.2f} cells/s)")

    cold = payload["modes"]["cold-numpy-fxp"]["cells_per_sec"]
    fast = payload["modes"][FAST_MODE]["cells_per_sec"]
    payload["speedup_vs_reference"] = round(fast / REFERENCE_ARMS_SERIAL, 3)

    payload["floors"] = sticky_floors(payload)
    _atomic_write_text(BENCH_PATH, json.dumps(payload, indent=2) + "\n")

    # Sticky regression floors (measured modes only; skipped modes keep
    # their committed floor in the file for the host that can run them).
    for mode, floor in payload["floors"].items():
        row = payload["modes"].get(mode)
        if not row or row.get("status") != "measured":
            continue
        assert row["cells_per_sec"] >= floor, \
            f"{mode}: {row['cells_per_sec']:.2f} cells/s under its " \
            f"committed floor {floor:.2f}"

    # The tentpole acceptance: warm fp32 arms-race sweep >= 5x the
    # frozen pre-batching serial loop, host-scaled.
    host_scale = min(1.0, cold / REFERENCE_COLD_SERIAL)
    target = (SPEEDUP_TARGET * REFERENCE_ARMS_SERIAL
              * host_scale * NOISE_ALLOWANCE)
    assert fast >= target, \
        f"{FAST_MODE} at {fast:.2f} cells/s, need {target:.2f} " \
        f"({SPEEDUP_TARGET}x the pre-batching serial loop at " \
        f"{REFERENCE_ARMS_SERIAL} cells/s, host scale {host_scale:.2f}, " \
        f"allowance {NOISE_ALLOWANCE})"
