#!/usr/bin/env python3
"""DSP fault characterization under power strikes (paper Fig 6 workflow).

Feeds random inputs to a DSP48 slice while one-cycle strikes of varying
bank sizes collapse the shared rail, then classifies the resulting
faults into duplication and random classes and renders the Fig 6(b)
dose-response.

Run:  python examples/dsp_fault_study.py
"""

from repro.analysis import bar_chart, fixed_table
from repro.dsp import FaultCharacterization


def main() -> None:
    harness = FaultCharacterization(seed=6)
    counts = [4000, 6000, 8000, 10000, 12000, 16000, 20000, 24000]

    print("Sweeping striker bank sizes (10,000 random DSP ops each)...\n")
    sweep = harness.sweep(counts, trials=10_000)

    rows = [
        [r.n_cells, f"{harness.strike_voltage(r.n_cells):.4f}",
         f"{r.duplication_rate:.3f}", f"{r.random_rate:.3f}",
         f"{r.total_rate:.3f}"]
        for r in sweep
    ]
    print(fixed_table(["cells", "v_strike", "duplication", "random",
                       "total"], rows))

    print("\nTotal fault rate (the paper: ~100% at 24,000 cells):")
    print(bar_chart([str(r.n_cells) for r in sweep],
                    [round(r.total_rate, 3) for r in sweep], width=50))

    print("\nDuplication fault rate (rises first, then random takes over):")
    print(bar_chart([str(r.n_cells) for r in sweep],
                    [round(r.duplication_rate, 3) for r in sweep], width=50))

    print("\nCross-validating the vectorized path against the live "
          "DSP48 pipeline co-simulation (slower, 150 trials):")
    for n in (8000, 16000, 24000):
        cosim = harness.run_cosim(n, trials=150)
        vec = next(r for r in sweep if r.n_cells == n)
        print(f"  {n:6d} cells: cosim total {cosim.total_rate:.3f} "
              f"vs vectorized {vec.total_rate:.3f}")


if __name__ == "__main__":
    main()
