#!/usr/bin/env python3
"""The defender's view: can the victim's own sensor see DeepStrike?

The paper's sensing trick cuts both ways — prior work uses the very same
TDC as a *defensive* droop monitor.  This example co-simulates the full
closed-loop attack on the board and shows what a defender-owned TDC
observes: strike trains stand far out of the normal activity envelope,
and a strict (latch-scanning) DRC would have rejected the striker
bitstream in the first place.

Run:  python examples/defense_probe.py
"""

import numpy as np

from repro.analysis import line_chart
from repro.core import AttackScheme
from repro.fpga import DesignRuleChecker
from repro.nn import build_probe_model, quantize_model
from repro.nn.model import PROBE_INPUT_SHAPE
from repro.testbed import build_attack_testbed


def main() -> None:
    model = quantize_model(build_probe_model())
    testbed = build_attack_testbed(model, input_shape=PROBE_INPUT_SHAPE,
                                   bank_cells=5000, seed=77)
    engine = testbed.engine
    ticks = (engine.schedule.total_cycles + 500) * 2

    # Baseline: victim running, attacker silent.
    testbed.board.reset()
    testbed.scheduler.load_scheme(AttackScheme(10, 5, 0))  # no strikes
    testbed.run(ticks)
    quiet = testbed.scheduler.readout_trace()

    # Attack: strikes across the conv3x3 layer.
    conv = engine.schedule.window("conv3x3")
    trigger = engine.schedule.windows()[0].start_cycle + 2
    scheme = AttackScheme(
        attack_delay=conv.start_cycle - trigger,
        attack_period=10,
        number_of_attacks=150,
    )
    testbed.board.reset()
    testbed.scheduler.load_scheme(scheme)
    testbed.run(ticks)
    noisy = testbed.scheduler.readout_trace()

    print(line_chart(quiet, height=9, width=100,
                     title="Defender TDC, normal inference:"))
    print()
    print(line_chart(noisy, height=9, width=100,
                     title="Defender TDC, inference under DeepStrike:"))

    # A simple droop-threshold detector: anything deeper than the worst
    # legitimate droop (plus margin) is an attack signature.
    normal_floor = quiet.min()
    margin = 3
    alarms = int(np.count_nonzero(noisy < normal_floor - margin))
    print(f"\nNormal-operation readout floor: {normal_floor}")
    print(f"Samples beyond floor-{margin} during the attack: {alarms} "
          f"({'ALARM' if alarms else 'no alarm'})")

    # And the structural defence: strict DRC catches the striker.
    strict = DesignRuleChecker(strict_latch_scan=True)
    report = strict.check(testbed.bank.netlist)
    print("\nStrict (latch-scanning) DRC on the striker bitstream:")
    print(report.summary())


if __name__ == "__main__":
    main()
