#!/usr/bin/env python3
"""A full remote attacker session over the UART channel (paper §IV).

"The adversary connects to this prototyped cloud-FPGA from the UART
serial port, with which the adversary can gather on-chip side-channel
leakage from the TDC-based delay-sensor and dynamically configure the
attacking scheme file."  This example replays that session: connect,
watch the victim, upload a scheme, observe the strike landing, then
retarget at run time — all through framed serial messages.

Run:  python examples/remote_session.py
"""

import numpy as np

from repro.analysis import line_chart
from repro.core import AttackScheme, RemoteAttacker, UARTLink
from repro.nn import build_probe_model, quantize_model
from repro.nn.model import PROBE_INPUT_SHAPE
from repro.testbed import build_attack_testbed


def main() -> None:
    testbed = build_attack_testbed(quantize_model(build_probe_model()),
                                   input_shape=PROBE_INPUT_SHAPE,
                                   bank_cells=5500, seed=99)
    engine = testbed.engine
    remote = RemoteAttacker(UARTLink(), testbed.scheduler)
    inference_ticks = (engine.schedule.total_cycles + 400) * 2

    print("[host] connected over UART to the attacker tenant")

    # --- Session step 1: passive observation -----------------------------
    testbed.board.reset()
    testbed.scheduler.load_scheme(AttackScheme(10, 5, 0))  # watch only
    testbed.run(inference_ticks)
    trace = remote.download_trace(max_samples=4096)
    print(f"[host] downloaded {trace.size} sensor samples")
    print(line_chart(trace, height=8, width=100,
                     title="[host] victim activity (no strikes):"))

    # --- Session step 2: strike the long conv layer ----------------------
    conv = engine.schedule.window("conv3x3")
    trigger = engine.schedule.windows()[0].start_cycle + 2
    scheme = AttackScheme(
        attack_delay=conv.start_cycle - trigger,
        attack_period=25,
        number_of_attacks=60,
    )
    ok = remote.upload_scheme(scheme)
    print(f"\n[host] uploaded scheme targeting conv3x3 "
          f"(delay={scheme.attack_delay}, period={scheme.attack_period}, "
          f"attacks={scheme.number_of_attacks}) -> "
          f"{'ACK' if ok else 'NAK'}")
    testbed.board.reset()
    testbed.scheduler.load_scheme(scheme)  # device applies the new file
    testbed.run(inference_ticks)
    struck_trace = remote.download_trace(max_samples=4096)
    print(line_chart(struck_trace, height=8, width=100,
                     title="[host] victim activity under strikes:"))
    print(f"[host] deepest readout: {struck_trace.min()} "
          f"(was {trace.min()} without strikes)")

    # --- Session step 3: retarget at run time -----------------------------
    late = engine.schedule.window("conv1x1")
    retarget = AttackScheme(
        attack_delay=late.start_cycle - trigger,
        attack_period=12,
        number_of_attacks=30,
    )
    ok = remote.upload_scheme(retarget)
    print(f"\n[host] retargeted to conv1x1 at run time -> "
          f"{'ACK' if ok else 'NAK'}")

    # A malformed upload is refused by the device.
    from repro.core.remote import encode_frame

    remote.link.host_send(encode_frame(0x01, b"\x00" * 7))  # bad length
    remote.service_device()
    from repro.core.remote import decode_frame

    opcode, _ = decode_frame(remote.link.host_recv())
    print(f"[host] malformed upload correctly refused "
          f"(opcode 0x{opcode:02x} = NAK)")


if __name__ == "__main__":
    main()
