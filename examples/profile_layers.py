#!/usr/bin/env python3
"""Side-channel layer profiling (paper Fig 1b and Fig 3 workflow).

Runs the three-layer probe model (maxpool -> conv3x3 -> conv1x1) on the
shared PDN while the calibrated TDC samples the rail, renders the sensor
trace, segments it into per-layer signatures, and shows the DNN start
detector's purified 5-bit view firing at the first layer's start.

Run:  python examples/profile_layers.py
"""

import numpy as np

from repro.accel import AcceleratorEngine, inference_current_trace
from repro.accel.activity import STALL_CURRENT
from repro.analysis import fixed_table, line_chart
from repro.config import default_config
from repro.core import DNNStartDetector, SideChannelProfiler
from repro.fpga import ClockManagementTile
from repro.fpga.pdn import PowerDistributionNetwork
from repro.nn import build_probe_model, quantize_model
from repro.nn.model import PROBE_INPUT_SHAPE
from repro.sensors import GateDelayModel, TDCSensor, calibrate_theta


def main() -> None:
    config = default_config()
    engine = AcceleratorEngine(quantize_model(build_probe_model()),
                               config=config,
                               rng=np.random.default_rng(10),
                               input_shape=PROBE_INPUT_SHAPE)

    # Calibrate the sensor at the board's true idle operating point.
    delay_model = GateDelayModel(config.delay)
    idle_pdn = PowerDistributionNetwork(config.pdn, config.clock.sim_dt,
                                        rng=None)
    idle_volts = idle_pdn.settle(STALL_CURRENT)
    theta, nominal = calibrate_theta(config.tdc, delay_model,
                                     ClockManagementTile(),
                                     idle_voltage=idle_volts,
                                     rng=np.random.default_rng(11))
    print(f"TDC calibrated: theta = {theta * 1e9:.3f} ns, idle readout "
          f"= {nominal} / {config.tdc.l_carry} "
          f"(paper: ~90 consecutive 1s)\n")

    # One victim inference, sensed through the PDN.
    sensor = TDCSensor(config.tdc, delay_model, theta,
                       rng=np.random.default_rng(12))
    current = inference_current_trace(engine.schedule, config.accel,
                                      config.clock,
                                      rng=np.random.default_rng(13))
    pdn = PowerDistributionNetwork(config.pdn, config.clock.sim_dt,
                                   rng=np.random.default_rng(14))
    pdn.settle(STALL_CURRENT)
    readouts = sensor.sample_trace(pdn.simulate(current))

    print(line_chart(readouts, height=10, width=100,
                     title="TDC readout during one probe inference "
                           "(Fig 1b analogue):"))
    print()

    profiler = SideChannelProfiler(nominal_readout=nominal)
    signatures = profiler.profile(readouts, dt=config.clock.sim_dt)
    rows = [
        [f"#{s.order}", s.kind_guess, s.start_tick, s.duration_ticks,
         f"{s.mean_droop:.2f}", f"{s.fluctuation:.2f}"]
        for s in signatures
    ]
    print("Recovered layer signature library:")
    print(fixed_table(["layer", "kind", "start", "ticks", "droop",
                       "fluct"], rows))
    truth = [(w.plan.name, w.plan.kind) for w in engine.schedule.windows()]
    print(f"\nGround truth (hidden from the attacker): {truth}\n")

    detector = DNNStartDetector(l_carry=config.tdc.l_carry)
    hw = detector.detector_input_trace(readouts)
    trigger = detector.find_trigger(readouts)
    start_tick = engine.schedule.windows()[0].start_cycle \
        * config.clock.ticks_per_victim_cycle
    print(line_chart(hw[:start_tick + 400], height=6, width=100,
                     title="DNN start detector input (Fig 3 analogue):"))
    print(f"\nFirst layer truly starts at tick {start_tick}; "
          f"detector fired at tick {trigger} "
          f"({trigger - start_tick} ticks of latency).")


if __name__ == "__main__":
    main()
