#!/usr/bin/env python3
"""The full DeepStrike case study (paper Fig 5b workflow).

Profiles the victim through the TDC side channel, plans per-layer strike
trains from the *profiled* signatures (black-box mode — no schedule
oracle), executes them against the test set, and prints the Fig 5(b)
accuracy-versus-strikes series including the blind baseline.

Run:  python examples/end_to_end_attack.py
"""

import numpy as np

from repro import get_pretrained
from repro.accel import AcceleratorEngine
from repro.analysis import fixed_table
from repro.core import BlindAttack, DeepStrike
from repro.core.evaluation import LayerSweepResult, sweep_to_rows
from repro.sensors import GateDelayModel, TDCSensor
from repro.sensors.calibration import theta_for_target


def main() -> None:
    victim = get_pretrained()
    print(victim.summary(), "\n")

    engine = AcceleratorEngine(victim.quantized,
                               rng=np.random.default_rng(20))
    attack = DeepStrike(engine, rng=np.random.default_rng(21))
    config = engine.config

    # Step 1: profile the victim through the side channel.
    delay_model = GateDelayModel(config.delay)
    theta = theta_for_target(config.tdc, delay_model, voltage=0.9867)
    sensor = TDCSensor(config.tdc, delay_model, theta,
                       rng=np.random.default_rng(22))
    library = attack.profile_victim(sensor, nominal_readout=92, n_traces=3)
    rows = [[f"#{s.order}", s.kind_guess, s.duration_ticks,
             f"{s.mean_droop:.2f}"] for s in library]
    print("Profiled layer library (black-box view):")
    print(fixed_table(["order", "kind", "ticks", "droop"], rows), "\n")

    # Step 2+3: plan from the profile and execute, per target.
    images = victim.dataset.test_images[:200]
    labels = victim.dataset.test_labels[:200]
    sweeps = []
    targets = [(0, [1000, 2000, 3600]),   # profiled conv1
               (2, [1500, 3000, 4500]),   # profiled conv2
               (3, [1500, 3000, 4500])]   # profiled fc1
    for order, counts in targets:
        label = f"{library[order].kind_guess}#{order}"
        sweep = LayerSweepResult(label)
        for count in counts:
            plan = attack.plan_from_profile(library, order, count)
            outcome = attack.execute(images, labels, plan)
            sweep.outcomes.append(outcome)
            print(f"  {label}: {count} strikes -> accuracy "
                  f"{outcome.attacked_accuracy:.3f} "
                  f"({plan.wasted_strikes} wasted)")
        sweeps.append(sweep)

    blind = BlindAttack(engine, rng=np.random.default_rng(23))
    blind_sweep = LayerSweepResult("blind")
    for count in (1500, 4500):
        outcome = blind.execute(images, labels, blind.plan_random(count))
        blind_sweep.outcomes.append(outcome)
        print(f"  blind: {count} strikes -> accuracy "
              f"{outcome.attacked_accuracy:.3f}")
    sweeps.append(blind_sweep)

    clean = sweeps[0].outcomes[0].clean_accuracy
    print(f"\nAccuracy vs strikes (clean {clean:.4f}; "
          "paper: conv2 drops ~14% at 4500 strikes):")
    print(sweep_to_rows(sweeps))
    print("\nMax accuracy drop per target:")
    print(fixed_table(["target", "max drop"],
                      [[s.target_layer, f"{s.max_drop:.4f}"]
                       for s in sweeps]))


if __name__ == "__main__":
    main()
