#!/usr/bin/env python3
"""Quickstart: one misclassification, end to end.

Builds the paper's full setup on the simulated PYNQ-Z1 — the trained,
quantized LeNet-5 victim accelerator, the TDC-based attack scheduler, and
the latch-loop power striker bank — plans a strike train against CONV2,
and shows one test digit flipping from a correct to a wrong prediction.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import get_pretrained
from repro.accel import AcceleratorEngine
from repro.analysis import sparkline
from repro.core import DeepStrike


def main() -> None:
    print("Training / loading the victim LeNet-5 (cached after first run)...")
    victim = get_pretrained()
    print(f"  {victim.summary()}\n")

    engine = AcceleratorEngine(victim.quantized,
                               rng=np.random.default_rng(2))
    print("Victim accelerator schedule:")
    print(engine.schedule.summary(), "\n")

    attack = DeepStrike(engine, rng=np.random.default_rng(3))
    plan = attack.plan_for_layer("conv2", n_strikes=4500)
    print(f"Planned {plan.strikes_landed} strikes on conv2, "
          f"mean strike voltage {plan.mean_strike_voltage():.4f} V")
    print(f"Attacking scheme file: delay={plan.scheme.attack_delay} "
          f"period={plan.scheme.attack_period} "
          f"attacks={plan.scheme.number_of_attacks}\n")

    images = victim.dataset.test_images[:200]
    labels = victim.dataset.test_labels[:200]
    clean_preds = engine.predict_clean(images)
    attacked_preds = engine.predict_under_attack(images, plan.struck)

    flipped = np.nonzero((clean_preds == labels)
                         & (attacked_preds != labels))[0]
    print(f"Clean accuracy:    {(clean_preds == labels).mean():.3f}")
    print(f"Attacked accuracy: {(attacked_preds == labels).mean():.3f}")
    print(f"{flipped.size} of {len(labels)} correct predictions flipped.\n")

    if flipped.size:
        k = int(flipped[0])
        print(f"Example victim: test image #{k} "
              f"(true digit {labels[k]})")
        print(f"  clean prediction:    {clean_preds[k]}")
        print(f"  under attack:        {attacked_preds[k]}")
        image = images[k, 0]
        for row in image[::2]:
            print("   " + sparkline(row, width=28))


if __name__ == "__main__":
    main()
